//! The experiment registry: every table/figure behind one uniform entry.
//!
//! Experiments implement the [`Experiment`] trait — metadata plus a
//! fallible `run` — and live in a lazily-built static index, so lookups
//! by id ([`find`]) are allocation-free and iteration ([`all`]) hands out
//! `&'static dyn Experiment` borrows.

use crate::experiments::{explore, extensions, faults, individual, mapred, overload, profile, smoke, tco_exp, webservice};
use crate::report::Report;
use edison_simfault::FaultPlan;
use edison_simrun::{Executor, RunError};
use edison_simtel::Telemetry;
use std::sync::OnceLock;

/// How much simulated time / how many sweep columns an experiment may
/// spend. `quick` keeps CI fast; `full` is the paper-scale run the `repro`
/// binary uses.
#[derive(Debug, Clone)]
pub struct RunBudget {
    /// httperf warm-up seconds.
    pub web_warmup_s: u64,
    /// httperf measurement seconds per point.
    pub web_measure_s: u64,
    /// Run all six Table 8 cluster sizes (vs a reduced column set).
    pub full_scalability: bool,
    /// Override fault schedule (`repro --fault-plan <file>`): fault-aware
    /// experiments (`fault_sweep`, `explore`) play this plan instead of
    /// their built-in schedules. `None` everywhere else.
    pub fault_plan: Option<FaultPlan>,
    /// Candidate fault schedules the `explore` experiment evaluates, and
    /// the per-row cap on `fault_sweep`'s worst-case candidates
    /// (`repro --explore-budget N`).
    pub explore_budget: usize,
    /// Run fault-aware web experiments with the reference guard enabled
    /// (`repro --guard`): `fault_sweep` plays its crash schedules against
    /// a guarded web tier, so breaker trips and overflow retries land in
    /// its table. `overload_sweep` always runs both arms regardless.
    pub guard: bool,
    /// Deadline override for the reference guard, milliseconds
    /// (`repro --guard-deadline-ms N`). `None` keeps the
    /// `GuardConfig::web_defaults` 1500 ms budget.
    pub guard_deadline_ms: Option<u64>,
}

impl RunBudget {
    /// CI-friendly budget.
    pub fn quick() -> Self {
        RunBudget {
            web_warmup_s: 2,
            web_measure_s: 6,
            full_scalability: false,
            fault_plan: None,
            explore_budget: 4,
            guard: false,
            guard_deadline_ms: None,
        }
    }

    /// Paper-scale budget (minutes of wall time in release builds).
    pub fn full() -> Self {
        RunBudget {
            web_warmup_s: 5,
            web_measure_s: 20,
            full_scalability: true,
            fault_plan: None,
            explore_budget: 16,
            guard: false,
            guard_deadline_ms: None,
        }
    }

    /// This budget with a custom fault schedule attached.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }
}

/// A runnable paper artefact: stable metadata plus a fallible `run`.
///
/// `run` receives the sweep [`Executor`] (worker-pool width from
/// `--jobs` / `EDISON_REPRO_JOBS`) and the telemetry sink
/// (`Telemetry::off()` for plain runs); experiments with simulation
/// content record a representative traced run into the sink when it is
/// enabled. Failures surface as typed [`RunError`]s instead of panics.
pub trait Experiment: Sync {
    /// Stable id (`table8`, `fig04_07`, …).
    fn id(&self) -> &'static str;
    /// What it reproduces.
    fn title(&self) -> &'static str;
    /// Whether `repro --all` includes this experiment. Demonstration
    /// entries (e.g. the deliberate-failure `fault_demo`) opt out.
    fn in_all(&self) -> bool {
        true
    }
    /// Execute and render.
    fn run(
        &self,
        budget: &RunBudget,
        exec: &Executor,
        tel: &mut Telemetry,
    ) -> Result<Report, RunError>;
}

/// The uniform run signature registry entries point at.
type RunFn = fn(&RunBudget, &Executor, &mut Telemetry) -> Result<Report, RunError>;

/// The registry's own [`Experiment`] implementation: static metadata plus
/// a function pointer. Every current experiment fits this shape; richer
/// experiments can implement the trait directly and be boxed in later.
struct FnExperiment {
    id: &'static str,
    title: &'static str,
    in_all: bool,
    run: RunFn,
}

impl Experiment for FnExperiment {
    fn id(&self) -> &'static str {
        self.id
    }
    fn title(&self) -> &'static str {
        self.title
    }
    fn in_all(&self) -> bool {
        self.in_all
    }
    fn run(
        &self,
        budget: &RunBudget,
        exec: &Executor,
        tel: &mut Telemetry,
    ) -> Result<Report, RunError> {
        (self.run)(budget, exec, tel)
    }
}

/// Shorthand for the common case: an always-included entry.
fn entry(id: &'static str, title: &'static str, run: RunFn) -> FnExperiment {
    FnExperiment { id, title, in_all: true, run }
}

/// The lazily-built static index, in paper order. Built exactly once per
/// process; [`find`] and [`all`] borrow from it without allocating.
fn index() -> &'static [FnExperiment] {
    static INDEX: OnceLock<Vec<FnExperiment>> = OnceLock::new();
    INDEX.get_or_init(|| {
        vec![
            entry("table1", "Related-work micro server specs", |_, _, _| Ok(individual::table1())),
            entry("table2", "Edison vs Dell resource ratios", |_, _, _| Ok(individual::table2())),
            entry("table3", "Idle/busy power", |_, _, _| Ok(individual::table3())),
            entry("table4", "Software versions", |_, _, _| Ok(individual::table4())),
            entry("sec41_dmips", "Dhrystone DMIPS", |_, _, _| Ok(individual::sec41_dmips())),
            entry("fig02_03", "Sysbench CPU sweep", |_, _, _| Ok(individual::fig02_03())),
            entry("sec42_membw", "Memory bandwidth sweep", |_, _, _| Ok(individual::sec42_membw())),
            entry("table5", "Storage throughput/latency", |_, _, _| Ok(individual::table5())),
            entry("sec44_net", "iperf/ping network tests", |_, _, _| Ok(individual::sec44_net())),
            entry("table6", "Web cluster scale configs", |_, _, _| Ok(individual::table6())),
            entry("fig04_07", "Web throughput/delay, lightest load", webservice::fig04_07),
            entry("fig05_08", "Web throughput/delay, mixed loads", webservice::fig05_08),
            entry("fig06_09", "Web throughput/delay, 20% images", webservice::fig06_09),
            entry("fig10_11", "Delay distributions", webservice::fig10_11),
            entry("table7", "Delay decomposition", webservice::table7),
            entry("fig12_17", "MapReduce timelines", mapred::fig12_17),
            entry("table8", "Time/energy matrix (+Fig 18-19)", mapred::table8),
            entry("sec53_speedup", "Scalability speed-up", mapred::scalability_speedup),
            entry("table9", "TCO constants", |_, _, _| Ok(individual::table9())),
            entry("table10", "TCO comparison", |_, _, _| Ok(tco_exp::table10())),
            entry(
                "fault_sweep",
                "Availability & efficiency under fault intensity × platform",
                faults::fault_sweep,
            ),
            entry(
                "explore",
                "Worst-case fault-schedule exploration with shrunk reproducers",
                explore::explore_experiment,
            ),
            entry(
                "overload_sweep",
                "Goodput, availability & degradation past the knee, guards off vs on",
                overload::overload_sweep,
            ),
            entry("ext_hybrid", "EXT: hybrid web tier (§7 vision)", extensions::ext_hybrid),
            entry("ext_failure", "EXT: node-failure impact", extensions::ext_failure),
            entry("ext_platforms", "EXT: related-work platform what-if", extensions::ext_platforms),
            entry("ext_dvfs", "EXT: DVFS vs substitution (§1)", extensions::ext_dvfs),
            entry("smoke", "End-to-end smoke run (web + MapReduce, telemetry-ready)", smoke::smoke),
            FnExperiment {
                id: "profile_probe",
                title: "PROBE: engine self-profile (per-kind/per-phase breakdown)",
                in_all: false,
                run: profile::profile_probe,
            },
            FnExperiment {
                id: "fault_demo",
                title: "DEMO: fault-isolation showcase (one point panics by design)",
                in_all: false,
                run: faults::fault_demo,
            },
        ]
    })
}

/// Every experiment, in paper order. Borrows from the static index — no
/// per-call allocation.
pub fn all() -> impl Iterator<Item = &'static dyn Experiment> {
    index().iter().map(|e| e as &dyn Experiment)
}

/// Find an experiment by id. Allocation-free: a linear scan over the
/// static index (27 entries — cheaper than hashing at this size).
pub fn find(id: &str) -> Option<&'static dyn Experiment> {
    index().iter().find(|e| e.id == id).map(|e| e as &dyn Experiment)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_paper_artifact() {
        let ids: Vec<&str> = all().map(|e| e.id()).collect();
        // tables 1-10 (7 via table7, 8 via table8...)
        for t in ["table1", "table2", "table3", "table4", "table5", "table6", "table7", "table8", "table9", "table10"] {
            assert!(ids.contains(&t), "missing {t}");
        }
        // all 19 figures are covered by these grouped ids
        for f in ["fig02_03", "fig04_07", "fig05_08", "fig06_09", "fig10_11", "fig12_17", "table8"] {
            assert!(ids.contains(&f), "missing {f}");
        }
    }

    #[test]
    fn find_works_and_borrows_statically() {
        assert!(find("table8").is_some());
        assert!(find("nope").is_none());
        // two lookups hand out the same static entry, not fresh copies
        let a = find("table8").expect("present");
        let b = find("table8").expect("present");
        assert!(std::ptr::eq(a, b), "find must borrow from the static index");
    }

    #[test]
    fn demo_experiments_are_excluded_from_all_runs() {
        let demo = find("fault_demo").expect("registered");
        assert!(!demo.in_all());
        assert!(find("smoke").expect("registered").in_all());
    }

    #[test]
    fn cheap_experiments_run_under_quick_budget() {
        let b = RunBudget::quick();
        for id in ["table1", "table2", "table3", "table4", "table5", "table6", "table9", "table10", "sec41_dmips", "sec42_membw", "sec44_net", "fig02_03"] {
            let e = find(id).expect("registered");
            let r = e
                .run(&b, &Executor::serial(), &mut Telemetry::off())
                .expect("cheap experiments cannot fail");
            assert_eq!(r.id, id);
            assert!(!r.body.is_empty());
        }
    }
}
