//! # edison-core
//!
//! The experiment harness: one entry point per table and figure of the
//! paper, producing text reports (and paper-vs-measured comparisons) from
//! the simulation substrates.
//!
//! ```no_run
//! use edison_core::registry;
//! use edison_simrun::Executor;
//! use edison_simtel::Telemetry;
//!
//! let mut tel = Telemetry::off(); // or `Telemetry::on()` to record traces
//! let exec = Executor::from_env(); // worker-pool width for sweeps
//! for exp in registry::all().filter(|e| e.in_all()) {
//!     match exp.run(&registry::RunBudget::quick(), &exec, &mut tel) {
//!         Ok(report) => println!("{report}"),
//!         Err(err) => eprintln!("{}: {err}", exp.id()),
//!     }
//! }
//! ```
//!
//! The `repro` binary drives the same registry from the command line:
//! `repro --list`, `repro table8`, `repro --all --full`, and records
//! telemetry with `repro smoke --trace t.json --metrics m.prom`.

pub mod chart;
pub mod experiments;
pub mod export;
pub mod paper;
pub mod registry;
pub mod report;

pub use registry::{all, find, RunBudget};
pub use report::{Comparison, Report};
