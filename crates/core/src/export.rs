//! CSV export of reports and series — machine-readable counterparts of the
//! ASCII artefacts, for plotting the figures outside the repo.

use crate::report::{Report, Series};
use std::fmt::Write as _;

/// Escape one CSV cell (RFC 4180 quoting).
pub fn csv_cell(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Series → CSV with an `x` column and one column per curve; missing
/// points are empty cells.
pub fn series_csv(x_label: &str, series: &[Series]) -> String {
    let mut xs: Vec<f64> = series.iter().flat_map(|s| s.points.iter().map(|p| p.0)).collect();
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs.dedup();
    let mut out = String::new();
    out.push_str(&csv_cell(x_label));
    for s in series {
        out.push(',');
        out.push_str(&csv_cell(&s.label));
    }
    out.push('\n');
    for &x in &xs {
        let _ = write!(out, "{x}");
        for s in series {
            out.push(',');
            if let Some(p) = s.points.iter().find(|p| p.0 == x) {
                let _ = write!(out, "{}", p.1);
            }
        }
        out.push('\n');
    }
    out
}

/// A report's paper-vs-measured rows as CSV.
pub fn comparisons_csv(report: &Report) -> String {
    let mut out = String::from("experiment,metric,paper,measured,ratio\n");
    for c in &report.comparisons {
        let _ = writeln!(
            out,
            "{},{},{},{},{}",
            csv_cell(&report.id),
            csv_cell(&c.metric),
            c.paper,
            c.measured,
            c.ratio()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Comparison;

    #[test]
    fn cells_are_quoted_when_needed() {
        assert_eq!(csv_cell("plain"), "plain");
        assert_eq!(csv_cell("a,b"), "\"a,b\"");
        assert_eq!(csv_cell("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn series_csv_aligns_missing_points() {
        let s = vec![
            Series { label: "a".into(), points: vec![(1.0, 10.0), (2.0, 20.0)] },
            Series { label: "b".into(), points: vec![(2.0, 99.0)] },
        ];
        let csv = series_csv("x", &s);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "x,a,b");
        assert_eq!(lines[1], "1,10,");
        assert_eq!(lines[2], "2,20,99");
    }

    #[test]
    fn comparisons_csv_has_header_and_rows() {
        let r = Report {
            id: "t".into(),
            title: "t".into(),
            body: String::new(),
            comparisons: vec![Comparison::new("metric, with comma", 2.0, 3.0)],
        };
        let csv = comparisons_csv(&r);
        assert!(csv.starts_with("experiment,metric,paper,measured,ratio\n"));
        assert!(csv.contains("\"metric, with comma\",2,3,1.5"));
    }
}
