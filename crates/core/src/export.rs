//! CSV export of reports and series — machine-readable counterparts of the
//! ASCII artefacts, for plotting the figures outside the repo.

use crate::report::{Report, Series};
use std::fmt::Write as _;

/// Escape one CSV cell (RFC 4180 quoting).
pub fn csv_cell(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Series → CSV with an `x` column and one column per curve; missing
/// points are empty cells.
pub fn series_csv(x_label: &str, series: &[Series]) -> String {
    let mut xs: Vec<f64> = series.iter().flat_map(|s| s.points.iter().map(|p| p.0)).collect();
    // total_cmp: NaN-safe (a sweep point that went NaN upstream must not
    // panic the exporter) and gives dedup a consistent order to work with.
    xs.sort_by(f64::total_cmp);
    xs.dedup_by(|a, b| a.total_cmp(b).is_eq());
    let mut out = String::new();
    out.push_str(&csv_cell(x_label));
    for s in series {
        out.push(',');
        out.push_str(&csv_cell(&s.label));
    }
    out.push('\n');
    for &x in &xs {
        let _ = write!(out, "{x}");
        for s in series {
            out.push(',');
            // total_cmp-based match so a NaN x still finds its own points.
            if let Some(p) = s.points.iter().find(|p| p.0.total_cmp(&x).is_eq()) {
                let _ = write!(out, "{}", p.1);
            }
        }
        out.push('\n');
    }
    out
}

/// Telemetry registry → long-form CSV: one row per counter/gauge value,
/// histogram bucket, and timeseries point. The `x` column carries the
/// bucket's `le` bound (histograms) or the sim timestamp in seconds
/// (timeseries); it is empty for scalars.
pub fn telemetry_csv(tel: &edison_simtel::Telemetry) -> String {
    let fmt_labels = |labels: &edison_simtel::Labels| {
        labels
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(";")
    };
    let mut out = String::from("kind,name,labels,x,value\n");
    let reg = &tel.registry;
    for (name, labels, v) in reg.counters() {
        let _ = writeln!(out, "counter,{},{},,{v}", csv_cell(name), csv_cell(&fmt_labels(labels)));
    }
    for (name, labels, v) in reg.gauges() {
        let _ = writeln!(out, "gauge,{},{},,{v}", csv_cell(name), csv_cell(&fmt_labels(labels)));
    }
    for (name, labels, h) in reg.histograms() {
        let l = csv_cell(&fmt_labels(labels));
        let mut cum = 0u64;
        for (i, &n) in h.buckets().iter().enumerate() {
            cum += n;
            let le = match h.bounds().get(i) {
                Some(&b) => format!("{b}"),
                None => "+Inf".to_string(),
            };
            let _ = writeln!(out, "histogram_bucket,{},{l},{le},{cum}", csv_cell(name));
        }
        let _ = writeln!(out, "histogram_sum,{},{l},,{}", csv_cell(name), h.sum());
        let _ = writeln!(out, "histogram_count,{},{l},,{}", csv_cell(name), h.count());
    }
    for (name, labels, points) in reg.series() {
        let l = csv_cell(&fmt_labels(labels));
        for &(t, v) in points {
            let _ = writeln!(out, "series,{},{l},{},{v}", csv_cell(name), t.as_secs_f64());
        }
    }
    out
}

/// A report's paper-vs-measured rows as CSV.
pub fn comparisons_csv(report: &Report) -> String {
    let mut out = String::from("experiment,metric,paper,measured,ratio\n");
    for c in &report.comparisons {
        let _ = writeln!(
            out,
            "{},{},{},{},{}",
            csv_cell(&report.id),
            csv_cell(&c.metric),
            c.paper,
            c.measured,
            c.ratio()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Comparison;

    #[test]
    fn cells_are_quoted_when_needed() {
        assert_eq!(csv_cell("plain"), "plain");
        assert_eq!(csv_cell("a,b"), "\"a,b\"");
        assert_eq!(csv_cell("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn series_csv_aligns_missing_points() {
        let s = vec![
            Series { label: "a".into(), points: vec![(1.0, 10.0), (2.0, 20.0)] },
            Series { label: "b".into(), points: vec![(2.0, 99.0)] },
        ];
        let csv = series_csv("x", &s);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "x,a,b");
        assert_eq!(lines[1], "1,10,");
        assert_eq!(lines[2], "2,20,99");
    }

    #[test]
    fn series_csv_survives_nan_x() {
        // Regression: partial_cmp().unwrap() used to panic on NaN sweep
        // points; total_cmp sorts them last and still matches them.
        let s = vec![Series {
            label: "a".into(),
            points: vec![(f64::NAN, 1.0), (1.0, 10.0)],
        }];
        let csv = series_csv("x", &s);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[1], "1,10");
        assert_eq!(lines[2], "NaN,1");
    }

    #[test]
    fn telemetry_csv_round_trip() {
        use edison_simtel::{labels, Telemetry};
        let mut tel = Telemetry::on();
        tel.counter_add("web_requests_total", labels(&[("outcome", "ok")]), 7);
        tel.observe("d_seconds", labels(&[]), &[1.0], 0.5);
        tel.series_push(
            "node_power_watts",
            labels(&[("node", "0")]),
            edison_simcore::SimTime::from_secs(2),
            3.25,
        );
        let csv = telemetry_csv(&tel);
        assert!(csv.starts_with("kind,name,labels,x,value\n"));
        assert!(csv.contains("counter,web_requests_total,outcome=ok,,7"));
        assert!(csv.contains("histogram_bucket,d_seconds,,1,1"));
        assert!(csv.contains("histogram_bucket,d_seconds,,+Inf,1"));
        assert!(csv.contains("series,node_power_watts,node=0,2,3.25"));
    }

    #[test]
    fn comparisons_csv_has_header_and_rows() {
        let r = Report {
            id: "t".into(),
            title: "t".into(),
            body: String::new(),
            comparisons: vec![Comparison::new("metric, with comma", 2.0, 3.0)],
        };
        let csv = comparisons_csv(&r);
        assert!(csv.starts_with("experiment,metric,paper,measured,ratio\n"));
        assert!(csv.contains("\"metric, with comma\",2,3,1.5"));
    }
}
