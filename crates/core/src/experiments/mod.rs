//! One module per group of paper artefacts.
//!
//! * [`individual`] — Tables 1–6, 9, Figures 2–3, the §4 text numbers.
//! * [`webservice`] — Figures 4–11, Table 7.
//! * [`mapred`] — Figures 12–19, Table 8.
//! * [`tco_exp`] — Table 10.
//! * [`extensions`] — hybrid tier, failure injection, platform what-ifs.
//! * [`smoke`] — one quick web point + one small MapReduce job, the
//!   telemetry demo / CI smoke target.
//! * [`faults`] — the deliberate-failure demo exercising the simrun
//!   layer's panic isolation end-to-end.
//! * [`overload`] — the graceful-degradation ramp: offered load past the
//!   knee, guards off vs on.
//! * [`profile`] — the simprof probe: observer-equivalence check plus the
//!   per-kind/per-phase engine breakdown.

pub mod explore;
pub mod extensions;
pub mod faults;
pub mod individual;
pub mod mapred;
pub mod overload;
pub mod profile;
pub mod smoke;
pub mod tco_exp;
pub mod webservice;
