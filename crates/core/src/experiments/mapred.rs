//! MapReduce experiments: Figures 12–19 and Table 8 (§5.2–§5.3).
//!
//! Matrix cells are independent simulations, so they fan out over the
//! simrun [`Executor`]; each cell's [`ClusterSetup`] seed is derived from
//! the `(job, cluster)` pair, making any single cell reproducible in
//! isolation.

use crate::paper;
use crate::registry::RunBudget;
use crate::report::{table, Comparison, Report};
use edison_mapreduce::engine::{run_job, run_job_traced, ClusterSetup, JobOutcome};
use edison_mapreduce::jobs::{self, JobProfile, Tune};
use edison_simrun::{derive_seed, Executor, RunError, SimError, ROOT_SEED};
use edison_simtel::Telemetry;

const MIB: u64 = 1024 * 1024;

/// The Table 8 cluster columns: (label, setup builder).
fn clusters(budget: &RunBudget) -> Vec<(String, ClusterSetup)> {
    let sizes: &[usize] = if budget.full_scalability { &[35, 17, 8, 4] } else { &[35, 8] };
    let mut v: Vec<(String, ClusterSetup)> = sizes
        .iter()
        .map(|&n| (format!("edison-{n}"), ClusterSetup::edison(n)))
        .collect();
    let dell_sizes: &[usize] = if budget.full_scalability { &[2, 1] } else { &[2] };
    for &n in dell_sizes {
        v.push((format!("dell-{n}"), ClusterSetup::dell(n)));
    }
    v
}

/// Job profile for a cluster label, with the paper's per-size re-tuning:
/// combined-input jobs scale the split count so each vcore still gets one
/// container (block size is raised as the cluster shrinks). Unknown job
/// names surface as [`SimError::UnknownJob`].
pub(crate) fn profile_for(job: &str, setup: &ClusterSetup) -> Result<JobProfile, SimError> {
    let tune = setup.tune;
    let mut p = jobs::by_name(job, tune)?;
    // per-cluster-size re-tuning of one-container-per-vcore jobs
    let vcores_total = match tune {
        Tune::Edison => 2 * setup.workers as u32,
        Tune::Dell => 12 * setup.workers as u32,
    };
    if matches!(job, "wordcount2" | "logcount2" | "pi") {
        // total work (input bytes / pi samples) is preserved by the re-split
        p = p.with_map_tasks(vcores_total.max(1));
    }
    Ok(p)
}

pub(crate) fn setup_for(job: &str, base: &ClusterSetup) -> ClusterSetup {
    let mut s = base.clone();
    if job == "terasort" {
        // §5.2.4: block size 64 MB on both clusters for fairness
        s = s.with_block(64 * MIB);
    }
    if matches!(job, "wordcount2" | "logcount2") {
        // the paper raises the block size on smaller clusters so the
        // combined splits still fit one per vcore
        let split = 1024 * MIB / (2 * s.workers as u64).max(1);
        let block = split.max(s.block_bytes);
        s = s.with_block(block);
    }
    s
}

/// Run one (job, cluster) cell with a seed derived from the cell's
/// identity (`mr:<job>:<label>`).
pub fn run_cell(job: &str, label: &str, base: &ClusterSetup) -> Result<JobOutcome, SimError> {
    let mut setup = setup_for(job, base);
    setup.seed = derive_seed(ROOT_SEED, &format!("mr:{job}:{label}"), 0);
    let profile = profile_for(job, &setup)?;
    Ok(run_job(&profile, &setup))
}

/// When the sink is enabled, re-run one representative cell with tracing
/// and merge the result (same reasoning as the web-side helper: the matrix
/// itself runs untraced on worker threads).
fn trace_representative(tel: &mut Telemetry, job: &str, base: &ClusterSetup) -> Result<(), SimError> {
    if !tel.is_on() {
        return Ok(());
    }
    let mut setup = setup_for(job, base);
    setup.seed = derive_seed(ROOT_SEED, &format!("trace:mr:{job}"), 0);
    let profile = profile_for(job, &setup)?;
    let (_, t) = run_job_traced(&profile, &setup, tel.child());
    tel.merge(t);
    Ok(())
}

/// Figures 12–17: utilisation/power timelines for wordcount, wordcount2
/// and pi on both full clusters.
pub fn fig12_17(_budget: &RunBudget, exec: &Executor, tel: &mut Telemetry) -> Result<Report, RunError> {
    trace_representative(tel, "logcount2", &ClusterSetup::edison(8))?;
    let cells = [
        ("fig12", "wordcount", "edison-35"),
        ("fig15", "wordcount", "dell-2"),
        ("fig13", "wordcount2", "edison-35"),
        ("fig16", "wordcount2", "dell-2"),
        ("fig14", "pi", "edison-35"),
        ("fig17", "pi", "dell-2"),
    ];
    let outs = exec.sweep(
        "mr:fig12_17",
        &cells,
        tel,
        |_, &(fig, job, cluster)| format!("{fig}:{job}@{cluster}"),
        |_, &(_, job, cluster)| {
            let base = if cluster.starts_with("edison") {
                ClusterSetup::edison(35)
            } else {
                ClusterSetup::dell(2)
            };
            run_cell(job, cluster, &base)
        },
    )?;
    let mut body = String::new();
    let mut comparisons = Vec::new();
    for ((fig, job, cluster), out) in cells.iter().zip(outs) {
        let out = out?;
        body.push_str(&format!(
            "{fig} ({job} on {cluster}): finish {:.0}s, energy {:.0}J, cpu-rise {:.0}s, first reduce at {:.0}s ({:.0}% of runtime), peak power {:.1}W, mean cpu {:.0}%\n",
            out.finish_time_s,
            out.energy_j,
            out.cpu_rise_s,
            out.first_reduce_s,
            100.0 * out.first_reduce_s / out.finish_time_s,
            out.timeline.power_w.max_value(),
            out.timeline.cpu_pct.mean_value(),
        ));
        if let Some(cell) = paper::table8_cell(job, cluster) {
            comparisons.push(Comparison::new(format!("{job} {cluster} time (s)"), cell.seconds, out.finish_time_s));
            comparisons.push(Comparison::new(format!("{job} {cluster} energy (J)"), cell.joules, out.energy_j));
        }
    }
    Ok(Report {
        id: "fig12_17".into(),
        title: "MapReduce utilisation timelines (Figures 12-17)".into(),
        body,
        comparisons,
    })
}

/// Table 8 / Figures 18–19: the full job × cluster-size matrix.
pub fn table8(budget: &RunBudget, exec: &Executor, tel: &mut Telemetry) -> Result<Report, RunError> {
    trace_representative(tel, "logcount2", &ClusterSetup::edison(8))?;
    let jobs_list = ["wordcount", "wordcount2", "logcount", "logcount2", "pi", "terasort"];
    let cols = clusters(budget);
    // one sweep over the whole matrix, row-major: every cell is an
    // independent deterministic sim with its own derived seed
    let cell_idx: Vec<(usize, usize)> = (0..jobs_list.len())
        .flat_map(|ji| (0..cols.len()).map(move |ci| (ji, ci)))
        .collect();
    let flat = exec.sweep(
        "mr:table8",
        &cell_idx,
        tel,
        |_, &(ji, ci)| format!("{}@{}", jobs_list[ji], cols[ci].0),
        |_, &(ji, ci)| run_cell(jobs_list[ji], &cols[ci].0, &cols[ci].1),
    )?;
    let mut results: Vec<Vec<JobOutcome>> = jobs_list.iter().map(|_| Vec::new()).collect();
    for (&(ji, _), out) in cell_idx.iter().zip(flat) {
        results[ji].push(out?);
    }

    let headers: Vec<&str> = std::iter::once("job").chain(cols.iter().map(|(l, _)| l.as_str())).collect();
    let mut rows = Vec::new();
    let mut comparisons = Vec::new();
    for (ji, job) in jobs_list.iter().enumerate() {
        let mut row = vec![job.to_string()];
        // find the least-energy cell (the paper's bold)
        let min_energy = results[ji].iter().map(|o| o.energy_j).fold(f64::INFINITY, f64::min);
        for (ci, (label, _)) in cols.iter().enumerate() {
            let out = &results[ji][ci];
            let bold = if (out.energy_j - min_energy).abs() < 1e-9 { "*" } else { "" };
            row.push(format!("{:.0}s,{:.0}J{bold}", out.finish_time_s, out.energy_j));
            if let Some(cell) = paper::table8_cell(job, label) {
                comparisons.push(Comparison::new(format!("{job} {label} time (s)"), cell.seconds, out.finish_time_s));
                comparisons.push(Comparison::new(format!("{job} {label} energy (J)"), cell.joules, out.energy_j));
            }
        }
        rows.push(row);
    }
    let mut body = table(&headers, &rows);
    body.push_str("* = least energy (the paper's bold cells)\n");

    // Figure 18/19 are the same matrix plotted as time and energy; derive
    // the headline efficiency ratios the abstract quotes.
    if let (Some(we), Some(wd)) = (find(&results, &cols, 0, "edison-35"), find(&results, &cols, 0, "dell-2")) {
        body.push_str(&format!(
            "wordcount work-done-per-joule gain (edison-35 vs dell-2): {:.2}x (paper 2.28x)\n",
            wd.energy_j / we.energy_j
        ));
    }
    if let (Some(pe), Some(pd)) = (find(&results, &cols, 4, "edison-35"), find(&results, &cols, 4, "dell-2")) {
        body.push_str(&format!(
            "pi energy: edison-35 {:.0}J vs dell-2 {:.0}J (paper: Edison 23.3% LESS efficient)\n",
            pe.energy_j, pd.energy_j
        ));
    }
    Ok(Report {
        id: "table8".into(),
        title: "Execution time and energy across cluster sizes (Table 8, Figures 18-19)".into(),
        body,
        comparisons,
    })
}

fn find<'a>(
    results: &'a [Vec<JobOutcome>],
    cols: &[(String, ClusterSetup)],
    job_idx: usize,
    label: &str,
) -> Option<&'a JobOutcome> {
    let ci = cols.iter().position(|(l, _)| l == label)?;
    results[job_idx].get(ci)
}

/// Speed-up summary (§5.3): mean speed-up per cluster doubling.
pub fn scalability_speedup(_budget: &RunBudget, exec: &Executor, tel: &mut Telemetry) -> Result<Report, RunError> {
    trace_representative(tel, "pi", &ClusterSetup::edison(4))?;
    let jobs_list = ["wordcount2", "logcount2", "pi"];
    let sizes = [4usize, 8, 17, 35];
    let mut body = String::new();
    let mut ratios = Vec::new();
    for job in jobs_list {
        let outs = exec.sweep(
            &format!("mr:speedup:{job}"),
            &sizes,
            tel,
            |_, &n| format!("edison-{n}"),
            |_, &n| run_cell(job, &format!("edison-{n}"), &ClusterSetup::edison(n)),
        )?;
        let mut times = Vec::new();
        for out in outs {
            times.push(out?.finish_time_s);
        }
        let mut speedups = Vec::new();
        for w in times.windows(2) {
            speedups.push(w[0] / w[1]);
        }
        let mean = speedups.iter().product::<f64>().powf(1.0 / speedups.len() as f64);
        ratios.push(mean);
        body.push_str(&format!(
            "{job}: times {:?} → mean speed-up per doubling {mean:.2}\n",
            times.iter().map(|t| t.round()).collect::<Vec<_>>()
        ));
    }
    let overall = ratios.iter().product::<f64>().powf(1.0 / ratios.len() as f64);
    body.push_str(&format!("overall mean speed-up: {overall:.2} (paper: 1.90 on Edison)\n"));
    Ok(Report {
        id: "sec53_speedup".into(),
        title: "Scalability speed-up (Section 5.3)".into(),
        body,
        comparisons: vec![Comparison::new("mean Edison speed-up per doubling", 1.90, overall)],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_scale_with_cluster_size() {
        let p35 = profile_for("wordcount2", &ClusterSetup::edison(35)).expect("known job");
        let p8 = profile_for("wordcount2", &ClusterSetup::edison(8)).expect("known job");
        assert_eq!(p35.map_tasks, 70);
        assert_eq!(p8.map_tasks, 16);
        let s8 = setup_for("wordcount2", &ClusterSetup::edison(8));
        assert!(s8.block_bytes >= 64 * MIB, "block raised on small clusters");
    }

    #[test]
    fn unknown_job_is_a_typed_error() {
        let err = profile_for("sorthash", &ClusterSetup::edison(8)).expect_err("unknown job");
        assert!(matches!(err, SimError::UnknownJob(ref n) if n == "sorthash"), "{err:?}");
        assert!(run_cell("sorthash", "edison-8", &ClusterSetup::edison(8)).is_err());
    }

    #[test]
    fn terasort_uses_64mb_blocks_on_edison() {
        let s = setup_for("terasort", &ClusterSetup::edison(35));
        assert_eq!(s.block_bytes, 64 * MIB);
    }

    #[test]
    fn quick_budget_trims_columns() {
        let b = RunBudget::quick();
        let c = clusters(&b);
        assert!(c.len() < 6);
        assert!(c.iter().any(|(l, _)| l == "edison-35"));
        assert!(c.iter().any(|(l, _)| l == "dell-2"));
    }

    #[test]
    fn one_cell_runs_and_is_seed_stable() {
        let out = run_cell("logcount2", "edison-8", &ClusterSetup::edison(8)).expect("known job");
        assert!(out.finish_time_s > 10.0);
        assert!(out.energy_j > 0.0);
        // the derived seed depends only on the cell identity
        let again = run_cell("logcount2", "edison-8", &ClusterSetup::edison(8)).expect("known job");
        assert_eq!(out.finish_time_s, again.finish_time_s);
        assert_eq!(out.energy_j, again.energy_j);
    }
}
