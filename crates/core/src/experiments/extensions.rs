//! Extension experiments beyond the paper's own evaluation (DESIGN.md
//! "Extensions"): the §7 hybrid-datacenter vision, node-failure impact,
//! and a related-work platform what-if.

use crate::registry::RunBudget;
use crate::report::{table, Comparison, Report};
use edison_hw::dvfs::{daily_energy_wh, DvfsModel};
use edison_hw::related;
use edison_simcore::time::{SimDuration, SimTime};
use edison_simfault::FaultPlan;
use edison_simrun::{derive_seed, derive_seed_at, Executor, RunError, SimError, ROOT_SEED};
use edison_simtel::Telemetry;
use edison_web::scenario::DEFAULT_RETRY_BUDGET;
use edison_web::stack::{run, run_traced, GenMode, Metrics, StackConfig};
use edison_web::{ClusterScale, Platform, WebScenario, WorkloadMix};

/// Full-scale web-tier config for one platform, seeded explicitly. The
/// missing Table 6 rows surface as [`SimError::Config`].
fn web_cfg(platform: Platform, conc: f64, budget: &RunBudget, seed: u64) -> Result<StackConfig, SimError> {
    let scenario = WebScenario::table6_or_err(platform, ClusterScale::Full)?;
    let mut cfg = StackConfig::new(
        scenario,
        WorkloadMix::lightest(),
        GenMode::Httperf { connections_per_sec: conc, calls_per_conn: 6.6 },
        seed,
    );
    cfg.warmup = SimDuration::from_secs(budget.web_warmup_s);
    cfg.measure = SimDuration::from_secs(budget.web_measure_s);
    Ok(cfg)
}

/// §7's "hybrid future datacenter": a half-scale Edison web tier plus one
/// Dell web server, compared against the pure tiers at equal offered load.
pub fn ext_hybrid(budget: &RunBudget, exec: &Executor, tel: &mut Telemetry) -> Result<Report, RunError> {
    let conc = 1024.0;
    let window = budget.web_measure_s as f64;

    // the two pure tiers are independent points — fan them out
    let pure_platforms = [Platform::Edison, Platform::Dell];
    let pures = exec.sweep(
        "ext:hybrid",
        &pure_platforms,
        tel,
        |_, p| format!("{p:?}"),
        |i, &p| {
            web_cfg(p, conc, budget, derive_seed_at(ROOT_SEED, "ext:hybrid", i)).map(|cfg| run(cfg).metrics)
        },
    )?;
    let mut pures = pures.into_iter();
    let edison: Metrics = pures.next().ok_or_else(|| SimError::Data("pure Edison run missing".into()))??;
    let dell: Metrics = pures.next().ok_or_else(|| SimError::Data("pure Dell run missing".into()))??;

    // hybrid: 12 Edison web + 1 Dell web (≈ same aggregate capacity as
    // 24 Edison under the 12:1 LB weighting), Edison caches
    let mut hybrid_cfg = web_cfg(
        Platform::Edison,
        conc,
        budget,
        derive_seed(ROOT_SEED, "ext:hybrid:mixed", 0),
    )?;
    hybrid_cfg.scenario.web_servers = 12;
    hybrid_cfg.hybrid_web = 1;
    let hybrid = if tel.is_on() {
        // trace the hybrid run itself — it is the novel configuration here
        let mut world = run_traced(hybrid_cfg, tel.child());
        let t = world.take_telemetry();
        tel.merge(t);
        world.metrics
    } else {
        run(hybrid_cfg).metrics
    };

    let row = |name: &str, m: &Metrics| {
        let rps = m.completed as f64 / window;
        let watts = m.power_w.mean_value();
        vec![
            name.to_string(),
            format!("{rps:.0}"),
            format!("{:.2}", m.delays_ms.mean()),
            format!("{watts:.1}"),
            format!("{:.1}", m.completed as f64 / m.energy_j.max(1e-9)),
            format!("{}", m.server_errors),
        ]
    };
    let rows = vec![
        row("24 Edison", &edison),
        row("2 Dell", &dell),
        row("12 Edison + 1 Dell (hybrid)", &hybrid),
    ];
    let body = table(
        &["web tier", "req/s", "delay ms", "power W", "req/J", "5xx"],
        &rows,
    );
    let hybrid_rpj = hybrid.completed as f64 / hybrid.energy_j.max(1e-9);
    let dell_rpj = dell.completed as f64 / dell.energy_j.max(1e-9);
    let edison_rpj = edison.completed as f64 / edison.energy_j.max(1e-9);
    Ok(Report {
        id: "ext_hybrid".into(),
        title: "Hybrid web tier (extension of the Section 7 vision)".into(),
        body,
        comparisons: vec![
            // the hybrid should land between the pure tiers on efficiency
            Comparison::new("hybrid req/J vs pure Dell (>1 expected)", 1.0, hybrid_rpj / dell_rpj),
            Comparison::new("hybrid req/J vs pure Edison (<1 expected)", 1.0, hybrid_rpj / edison_rpj),
        ],
    })
}

/// Node-failure impact (Introduction, advantage 2): crash one web server
/// mid-window on each platform — via the simfault layer, so memcached
/// contents and listen-queue state stay warm right up to the fault — and
/// compare the damage.
pub fn ext_failure(budget: &RunBudget, exec: &Executor, tel: &mut Telemetry) -> Result<Report, RunError> {
    let conc = 1024.0;
    let window = budget.web_measure_s as f64;
    let crash_at =
        SimTime::ZERO + SimDuration::from_secs(budget.web_warmup_s + budget.web_measure_s / 2);
    let platforms = [Platform::Edison, Platform::Dell];
    // each platform's healthy/crashed pair shares one derived seed so the
    // scheduled crash is the only difference between the two runs
    let pairs = exec.sweep(
        "ext:failure",
        &platforms,
        tel,
        |_, p| format!("{p:?}"),
        |i, &p| -> Result<(Metrics, Metrics), SimError> {
            let seed = derive_seed_at(ROOT_SEED, "ext:failure", i);
            let healthy = run(web_cfg(p, conc, budget, seed)?).metrics;
            let mut cfg = web_cfg(p, conc, budget, seed)?;
            cfg.fault_plan = FaultPlan::new().crash(0, crash_at);
            cfg.retry_budget = DEFAULT_RETRY_BUDGET;
            let crashed = run(cfg).metrics;
            Ok((healthy, crashed))
        },
    )?;
    let mut rows = Vec::new();
    let mut losses = Vec::new();
    for (platform, pair) in platforms.iter().zip(pairs) {
        let (healthy, crashed) = pair?;
        let rps_h = healthy.completed as f64 / window;
        let rps_k = crashed.completed as f64 / window;
        let loss = 1.0 - rps_k / rps_h;
        losses.push(loss);
        rows.push(vec![
            format!("{platform:?}"),
            format!("{rps_h:.0}"),
            format!("{rps_k:.0}"),
            format!("{:.1}%", loss * 100.0),
            format!("{}", crashed.failovers),
            format!("{}", crashed.server_errors),
        ]);
    }
    Ok(Report {
        id: "ext_failure".into(),
        title: "Web-tier node-failure impact (extension)".into(),
        body: table(
            &["platform", "req/s healthy", "req/s with crash", "loss", "failovers", "5xx"],
            &rows,
        ),
        comparisons: vec![Comparison::new(
            "Dell loss / Edison loss (≫1 expected)",
            12.0,
            losses[1] / losses[0].max(1e-6),
        )],
    })
}

/// Related-work platform what-if: MI-per-joule figure of merit across the
/// Table 1 platforms with full models.
pub fn ext_platforms(_budget: &RunBudget, _exec: &Executor, _tel: &mut Telemetry) -> Result<Report, RunError> {
    let rows: Vec<Vec<String>> = related::all_platforms()
        .iter()
        .map(|s| {
            vec![
                s.name.clone(),
                format!("{:.0}", s.cpu.total_mips()),
                format!("{:.2}", s.power.node_busy()),
                format!("{:.0}", related::mi_per_joule(s)),
                format!("${:.0}", s.unit_cost_usd),
            ]
        })
        .collect();
    let edison_eff = related::mi_per_joule(&edison_hw::presets::edison());
    let dell_eff = related::mi_per_joule(&edison_hw::presets::dell_r620());
    Ok(Report {
        id: "ext_platforms".into(),
        title: "Related-work platform what-if (Table 1 with full models)".into(),
        body: table(&["platform", "MIPS", "busy W", "MI/J", "cost"], &rows),
        comparisons: vec![Comparison::new(
            "Edison-with-adaptor MI/J vs Dell (nameplate CPU-efficiency edge)",
            1.0,
            edison_eff / dell_eff,
        )],
    })
}

/// DVFS vs micro-server substitution on a diurnal day (§1's quantitative
/// argument): DVFS saves ≲30 %, the Edison swap > 60 %.
pub fn ext_dvfs(_budget: &RunBudget, _exec: &Executor, _tel: &mut Telemetry) -> Result<Report, RunError> {
    let dell = DvfsModel::from_spec(&edison_hw::presets::dell_r620());
    let edison = edison_hw::presets::edison().power;
    let fixed = daily_energy_wh(|u| dell.power_fixed(u));
    let dvfs = daily_energy_wh(|u| dell.power_dvfs(u));
    let swap = daily_energy_wh(|u| 16.0 * edison.power_at(u));
    let rows = vec![
        vec!["Dell, fixed frequency".into(), format!("{fixed:.0}"), "-".into()],
        vec![
            "Dell, ideal DVFS".into(),
            format!("{dvfs:.0}"),
            format!("{:.0}%", (1.0 - dvfs / fixed) * 100.0),
        ],
        vec![
            "16 Edison nodes (Table 2 sizing)".into(),
            format!("{swap:.0}"),
            format!("{:.0}%", (1.0 - swap / fixed) * 100.0),
        ],
    ];
    Ok(Report {
        id: "ext_dvfs".into(),
        title: "DVFS vs micro-server substitution over a diurnal day (extension of §1)".into(),
        body: table(&["configuration", "Wh/day", "saving"], &rows),
        comparisons: vec![
            Comparison::new("ideal-DVFS saving (paper: ≤30%)", 0.30, 1.0 - dvfs / fixed),
            Comparison::new("Edison-swap saving (paper: can exceed 70%)", 0.70, 1.0 - swap / fixed),
        ],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dvfs_report_shapes_hold() {
        let r = ext_dvfs(&RunBudget::quick(), &Executor::serial(), &mut Telemetry::off())
            .expect("static experiment");
        let dvfs_saving = r.comparisons[0].measured;
        let swap_saving = r.comparisons[1].measured;
        assert!(swap_saving > 2.0 * dvfs_saving, "swap {swap_saving} vs dvfs {dvfs_saving}");
    }

    #[test]
    fn platform_table_renders() {
        let r = ext_platforms(&RunBudget::quick(), &Executor::serial(), &mut Telemetry::off())
            .expect("static experiment");
        assert!(r.body.contains("FAWN"));
        assert!(r.body.contains("Raspberry"));
        assert_eq!(r.comparisons.len(), 1);
    }
}
