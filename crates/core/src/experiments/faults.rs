//! Fault experiments: the graceful-degradation sweep (`fault_sweep`) and
//! the deliberate-failure demonstration (`fault_demo`).
//!
//! `fault_sweep` is the quantitative form of the paper's Introduction
//! advantage 2: it plays a deterministic crash/restart schedule (or a
//! custom `--fault-plan` file) against the web tier of both platforms and
//! reports availability, p99 delay, failovers, recovery time, and
//! work-done-per-joule per fault intensity. Injected-and-recovered faults
//! are *expected* outcomes: they never surface as `RunError`, so exit
//! code 3 stays reserved for genuine harness failures.
//!
//! `fault_demo`: one sweep point panics by design. The run layer's
//! guarantees are visible end-to-end: the executor isolates the crash,
//! the sibling points still complete (their outcome counters land in
//! telemetry), and the experiment surfaces [`RunError::PointFailed`]
//! naming the point — which `repro fault_demo` renders as a readable
//! error and exit code 3 instead of an aborted process. Excluded from
//! `repro --all`.

use crate::registry::RunBudget;
use crate::report::{table, Comparison, Report};
use edison_simcore::time::{SimDuration, SimTime};
use edison_simexplore::{candidates, ExploreBudget, PerturbSpace};
use edison_simfault::FaultPlan;
use edison_simrun::{derive_seed_at, Executor, RunError, SimError, ROOT_SEED};
use edison_simtel::Telemetry;
use edison_web::scenario::DEFAULT_RETRY_BUDGET;
use edison_web::stack::{run, run_traced, GenMode, Metrics, StackConfig};
use edison_web::{ClusterScale, Platform, WebScenario, WorkloadMix};

/// One sweep point: a platform at a fault intensity (web servers crashed
/// mid-window).
type SweepPoint = (Platform, u32);

/// The built-in intensity ladder: crash web servers `0..k` staggered
/// across the measurement window, each down for a quarter window. The
/// schedule is pure function-of-inputs, so the sweep is deterministic at
/// any `--jobs` width.
fn ladder_plan(k: u32, budget: &RunBudget) -> FaultPlan {
    let warmup = budget.web_warmup_s as f64;
    let measure = budget.web_measure_s as f64;
    // long enough for the LB's 2-check FALL window to notice, early enough
    // that the RISE re-admission (the recovery sample) lands in-window
    let outage = SimDuration::from_secs_f64((measure / 4.0).max(3.0));
    let mut plan = FaultPlan::new();
    for n in 0..k {
        let at = SimTime::from_secs_f64(warmup + measure * 0.10 * f64::from(n));
        plan = plan.crash_restart(usize::try_from(n).unwrap_or(usize::MAX), at, outage);
    }
    plan
}

/// Web-tier config for one sweep point. Quick budgets run the quarter- /
/// full-scale pair (CI-sized clusters); `--full` runs both platforms at
/// Table 6 full scale under the paper's 1024-connection load.
fn sweep_cfg(
    platform: Platform,
    budget: &RunBudget,
    seed: u64,
) -> Result<StackConfig, SimError> {
    let (scale, conc) = if budget.full_scalability {
        (ClusterScale::Full, 1024.0)
    } else {
        match platform {
            // quarter cluster under a quarter of the paper's 1024-conn load
            Platform::Edison => (ClusterScale::Quarter, 256.0),
            // the Dell pair is already CI-sized; keep the full 1024-conn
            // load so losing one of two nodes actually bites (at 256 the
            // survivor absorbs the whole load and the comparison inverts)
            Platform::Dell => (ClusterScale::Full, 1024.0),
        }
    };
    let scenario = WebScenario::table6_or_err(platform, scale)?;
    let mut cfg = StackConfig::new(
        scenario,
        WorkloadMix::lightest(),
        GenMode::Httperf { connections_per_sec: conc, calls_per_conn: 6.6 },
        seed,
    );
    cfg.warmup = SimDuration::from_secs(budget.web_warmup_s);
    cfg.measure = SimDuration::from_secs(budget.web_measure_s);
    cfg.retry_budget = DEFAULT_RETRY_BUDGET;
    if budget.guard {
        // `repro fault_sweep --guard`: crash schedules against a guarded
        // tier — breakers trip on the dead backend and overflow retries
        // become distinguishable from dead-backend ones in the table
        cfg.guard = crate::experiments::overload::reference_guard(budget);
    }
    Ok(cfg)
}

/// The plan a point plays: intensity 0 is always fault-free; positive
/// intensities play the `--fault-plan` override when one was given, else
/// the built-in ladder.
fn point_plan(k: u32, budget: &RunBudget) -> FaultPlan {
    if k == 0 {
        return FaultPlan::new();
    }
    match &budget.fault_plan {
        Some(custom) => custom.clone(),
        None => ladder_plan(k, budget),
    }
}

/// Availability: completed requests over every request the window asked
/// for (completions + server-side 5xx + client-side abandons).
pub(crate) fn availability(m: &Metrics) -> f64 {
    let asked = m.completed + m.server_errors + m.client_errors;
    if asked == 0 {
        return 1.0;
    }
    m.completed as f64 / asked as f64
}

/// Sweep fault intensity × platform over the web tier and report
/// availability, p99 delay, failover/recovery behaviour, and
/// work-done-per-joule. The paper's §1 claim in numbers: one crashed node
/// costs the wimpy cluster a sliver of capacity and the brawny cluster a
/// large bite.
///
/// Every faulted row additionally reports *worst-case* availability and
/// recovery next to the mean: a timing-only simexplore neighbourhood
/// (start jitter around each fault, capped at the `--explore-budget`
/// schedule count) runs through the same sweep, and the row-worst is
/// taken over the hand-written schedule plus its perturbations. The
/// flattened (row, candidate) list goes through a single `exec.sweep`
/// call, so the whole thing stays input-ordered and byte-identical at
/// any `--jobs` width.
pub fn fault_sweep(
    budget: &RunBudget,
    exec: &Executor,
    tel: &mut Telemetry,
) -> Result<Report, RunError> {
    let max_k = if budget.fault_plan.is_some() { 1 } else { 2 };
    let mut points: Vec<SweepPoint> = Vec::new();
    for k in 0..=max_k {
        points.push((Platform::Edison, k));
    }
    for k in 0..=max_k.min(1) {
        points.push((Platform::Dell, k));
    }
    let window = budget.web_measure_s as f64;
    // flatten (row, candidate): candidate 0 is always the row's own plan,
    // so the mean columns are untouched by the worst-case machinery
    let space = PerturbSpace::timing_only(SimDuration::from_secs(1), 1);
    let xbudget = ExploreBudget::new(budget.explore_budget, ROOT_SEED);
    let mut flat: Vec<(usize, usize, FaultPlan)> = Vec::new();
    for (i, &(_p, k)) in points.iter().enumerate() {
        let plan = point_plan(k, budget);
        if k == 0 {
            flat.push((i, 0, plan.normalized()));
        } else {
            for (ci, c) in candidates(&plan, &space, &xbudget).into_iter().enumerate() {
                flat.push((i, ci, c.plan));
            }
        }
    }
    let flat_results = exec.sweep(
        "fault_sweep",
        &flat,
        tel,
        |_, (pi, ci, _)| {
            let (p, k) = points[*pi];
            format!("{p:?}x{k}c{ci}")
        },
        |_, (pi, _ci, plan)| -> Result<Metrics, SimError> {
            // the workload seed is per-row: candidates of a row differ
            // only in their fault schedule, never in offered load
            let seed = derive_seed_at(ROOT_SEED, "fault_sweep", *pi);
            let mut cfg = sweep_cfg(points[*pi].0, budget, seed)?;
            cfg.fault_plan = plan.clone();
            Ok(run(cfg).metrics)
        },
    )?;
    // regroup by row, preserving candidate order (flat is row-major)
    let mut results: Vec<Vec<Metrics>> = (0..points.len()).map(|_| Vec::new()).collect();
    for ((pi, _, _), r) in flat.iter().zip(flat_results) {
        results[*pi].push(r?);
    }
    if tel.is_on() {
        // trace the Edison single-crash run — the row the recovery
        // histogram and failover counters in the export come from
        let idx = points
            .iter()
            .position(|&(p, k)| p == Platform::Edison && k == 1)
            .unwrap_or(0);
        let mut cfg = sweep_cfg(
            Platform::Edison,
            budget,
            derive_seed_at(ROOT_SEED, "fault_sweep", idx),
        )?;
        cfg.fault_plan = point_plan(1, budget);
        let mut world = run_traced(cfg, tel.child());
        tel.merge(world.take_telemetry());
    }

    let mut rows = Vec::new();
    let mut healthy_rps = [0.0f64; 2]; // [Edison, Dell]
    let mut one_crash_rps = [0.0f64; 2];
    for (&(platform, k), mut cand_metrics) in points.iter().zip(results) {
        // row-worst across the schedule and its timing perturbations:
        // lowest availability, longest single recovery
        let wc_avail = cand_metrics
            .iter()
            .map(availability)
            .fold(f64::INFINITY, |a, b| if b.total_cmp(&a).is_lt() { b } else { a });
        let wc_recovery = cand_metrics
            .iter()
            .filter(|c| c.recovery_s.len() > 0)
            .map(|c| c.recovery_s.max())
            .fold(f64::NEG_INFINITY, |a, b| if b.total_cmp(&a).is_gt() { b } else { a });
        let m = &mut cand_metrics[0]; // the row's own (unperturbed) schedule
        let rps = m.completed as f64 / window;
        let pi = usize::from(platform == Platform::Dell);
        if k == 0 {
            healthy_rps[pi] = rps;
        } else if k == 1 {
            one_crash_rps[pi] = rps;
        }
        let label = match (&budget.fault_plan, k) {
            (_, 0) => "none".to_string(),
            (Some(_), _) => "custom".to_string(),
            (None, k) => format!("{k} crash"),
        };
        rows.push(vec![
            format!("{platform:?}"),
            label,
            format!("{rps:.0}"),
            format!("{:.2}%", availability(m) * 100.0),
            format!("{:.2}%", wc_avail * 100.0),
            format!("{:.1}", m.delays_ms.percentile(99.0)),
            format!("{}", m.failovers),
            format!("{}/{}", m.retry_dead_total, m.retry_overflow_total),
            if m.recovery_s.len() == 0 { "-".into() } else { format!("{:.2}", m.recovery_s.mean()) },
            if wc_recovery.is_finite() { format!("{wc_recovery:.2}") } else { "-".into() },
            format!("{:.1}", m.completed as f64 / m.energy_j.max(1e-9)),
        ]);
    }
    let body = table(
        &[
            "platform",
            "faults",
            "req/s",
            "avail",
            "wc avail",
            "p99 ms",
            "failovers",
            "retries d/o",
            "recovery s",
            "wc rec s",
            "req/J",
        ],
        &rows,
    );
    let edison_retention = one_crash_rps[0] / healthy_rps[0].max(1e-9);
    let dell_retention = one_crash_rps[1] / healthy_rps[1].max(1e-9);
    let edison_loss = (1.0 - edison_retention).max(1e-6);
    let dell_loss = (1.0 - dell_retention).max(1e-6);
    Ok(Report {
        id: "fault_sweep".into(),
        title: "Availability & efficiency under fault intensity × platform".into(),
        body,
        comparisons: vec![
            Comparison::new(
                "Edison 1-crash throughput retention (recovery ⇒ near 1)",
                0.95,
                edison_retention,
            ),
            // expected value is the node-share argument (§1): one crash takes
            // 1/2 of the Dell pair but only 1/24 of the full Edison tier
            Comparison::new("Dell loss / Edison loss (≫1 expected, §1)", 12.0, dell_loss / edison_loss),
        ],
    })
}

/// Run an 8-point sweep whose point 5 always panics.
pub fn fault_demo(
    _budget: &RunBudget,
    exec: &Executor,
    tel: &mut Telemetry,
) -> Result<Report, RunError> {
    let points: Vec<u32> = (0..8).collect();
    let vals = exec.sweep(
        "fault_demo",
        &points,
        tel,
        |i, _| format!("point{i}"),
        |_, &p| {
            if p == 5 {
                // simlint: allow(R4) the whole point of this demo is a deliberate panic
                panic!("deliberate fault-injection panic (point 5)");
            }
            u64::from(p) * 2
        },
    )?;
    // Unreachable in practice — point 5 always panics — but kept total so
    // the demo stays honest if the injection above is ever edited away.
    Ok(Report {
        id: "fault_demo".into(),
        title: "DEMO: fault-isolation showcase".into(),
        body: format!("all points completed unexpectedly: {vals:?}\n"),
        comparisons: vec![],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_is_deterministic_and_staggered() {
        let b = RunBudget::quick();
        let p2 = ladder_plan(2, &b);
        assert_eq!(p2.len(), 4, "2 crashes + 2 restarts");
        assert_eq!(p2, ladder_plan(2, &b));
        assert!(ladder_plan(0, &b).is_empty());
        // every crash lands inside the window and recovers before its end
        let window_end = SimTime::from_secs(b.web_warmup_s + b.web_measure_s);
        for f in p2.faults() {
            assert!(f.at < window_end, "fault at {:?} past window end", f.at);
        }
    }

    #[test]
    fn custom_plan_overrides_the_ladder_but_not_the_baseline() {
        let custom = FaultPlan::new().crash(3, SimTime::from_secs(4));
        let b = RunBudget::quick().with_fault_plan(custom.clone());
        assert_eq!(point_plan(1, &b), custom);
        assert!(point_plan(0, &b).is_empty(), "intensity 0 stays fault-free");
        let plain = RunBudget::quick();
        assert_eq!(point_plan(1, &plain), ladder_plan(1, &plain));
    }

    #[test]
    fn fault_demo_isolates_and_reports() {
        let mut tel = Telemetry::on();
        let err = fault_demo(&RunBudget::quick(), &Executor::new(4), &mut tel)
            .expect_err("point 5 must fail");
        match err {
            RunError::PointFailed { point, cause } => {
                assert_eq!(point, "fault_demo/point5");
                assert!(cause.contains("deliberate"), "cause: {cause}");
            }
            other => panic!("wrong error class: {other:?}"),
        }
        // the seven sibling points still ran
        let prom = tel.prometheus_text();
        assert!(prom.contains("simrun_points_total"), "{prom}");
        assert!(prom.contains("outcome=\"ok\"") && prom.contains("7"), "{prom}");
    }
}
