//! The deliberate-failure demonstration (`fault_demo`).
//!
//! One sweep point panics by design. The run layer's guarantees are
//! visible end-to-end: the executor isolates the crash, the sibling
//! points still complete (their outcome counters land in telemetry), and
//! the experiment surfaces [`RunError::PointFailed`] naming the point —
//! which `repro fault_demo` renders as a readable error and exit code 3
//! instead of an aborted process. Excluded from `repro --all`.

use crate::registry::RunBudget;
use crate::report::Report;
use edison_simrun::{Executor, RunError};
use edison_simtel::Telemetry;

/// Run an 8-point sweep whose point 5 always panics.
pub fn fault_demo(
    _budget: &RunBudget,
    exec: &Executor,
    tel: &mut Telemetry,
) -> Result<Report, RunError> {
    let points: Vec<u32> = (0..8).collect();
    let vals = exec.sweep(
        "fault_demo",
        &points,
        tel,
        |i, _| format!("point{i}"),
        |_, &p| {
            if p == 5 {
                // simlint: allow(R4) the whole point of this demo is a deliberate panic
                panic!("deliberate fault-injection panic (point 5)");
            }
            u64::from(p) * 2
        },
    )?;
    // Unreachable in practice — point 5 always panics — but kept total so
    // the demo stays honest if the injection above is ever edited away.
    Ok(Report {
        id: "fault_demo".into(),
        title: "DEMO: fault-isolation showcase".into(),
        body: format!("all points completed unexpectedly: {vals:?}\n"),
        comparisons: vec![],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_demo_isolates_and_reports() {
        let mut tel = Telemetry::on();
        let err = fault_demo(&RunBudget::quick(), &Executor::new(4), &mut tel)
            .expect_err("point 5 must fail");
        match err {
            RunError::PointFailed { point, cause } => {
                assert_eq!(point, "fault_demo/point5");
                assert!(cause.contains("deliberate"), "cause: {cause}");
            }
            other => panic!("wrong error class: {other:?}"),
        }
        // the seven sibling points still ran
        let prom = tel.prometheus_text();
        assert!(prom.contains("simrun_points_total"), "{prom}");
        assert!(prom.contains("outcome=\"ok\"") && prom.contains("7"), "{prom}");
    }
}
