//! Overload experiments: the graceful-degradation ramp (`overload_sweep`).
//!
//! The paper's figures stop at the saturation knee; this sweep walks past
//! it. Each platform lane ramps offered load over fixed multiples of its
//! guards-off knee, once with the guard layer off and once with the
//! reference guard on (deadlines, circuit breakers, an admission bucket
//! sized to the knee, the CoDel queue gate, brownout). Both arms of a
//! rung share one workload seed, so they face the identical offered load
//! and every row difference is the guard's doing: goodput, availability,
//! shed/degraded fractions, p99, deadline misses, and req/J per rung.
//!
//! "Availability" here is stricter than `fault_sweep`'s and is
//! *demand-normalized*: full-fidelity completions over the request
//! demand the clients offered (`conn/s × window × calls/conn`). Because
//! both arms share the seed, the denominator is identical across them —
//! a guard can only raise availability by completing more real requests,
//! never by relabeling refusals, and a degraded or shed response never
//! counts as a success. The guard wins past the knee because bounding
//! the backlog keeps the accepted work fast (no 5xx storms on Edison, no
//! SYN-retransmit congestion collapse on Dell) instead of letting every
//! request queue toward timeout.

use crate::registry::RunBudget;
use crate::report::{table, Comparison, Report};
use edison_simcore::time::SimDuration;
use edison_simguard::{Budget, GuardConfig};
use edison_simrun::{derive_seed_at, Executor, RunError, SimError, ROOT_SEED};
use edison_simtel::Telemetry;
use edison_web::stack::{run, run_traced, GenMode, Metrics, StackConfig};
use edison_web::{ClusterScale, Platform, WebScenario, WorkloadMix};

/// Offered-load rungs as multiples of a lane's knee: two at-or-below,
/// two past (where the guards-off arm falls off the cliff).
const RUNGS: [f64; 4] = [0.5, 1.0, 1.5, 2.0];

/// httperf's mean calls per connection — converts connection rates to
/// request demand.
const CALLS_PER_CONN: f64 = 6.6;

/// One ramp lane: a platform/scale pair plus its guards-off saturation
/// knee (connections/s at 6.6 calls/conn where availability starts
/// collapsing — measured once, then pinned so the rungs are stable).
struct Lane {
    platform: Platform,
    scale: ClusterScale,
    knee_cps: f64,
}

/// The CI-sized lanes. `--full` widens the measurement window through
/// the budget but keeps the same lanes: the knee is a property of the
/// scenario, not of how long we watch it.
fn lanes() -> Vec<Lane> {
    vec![
        // Eighth-scale goodput saturates ≈850 req/s ⇒ ≈130 conn/s; past
        // it the bounded PHP backlog overflows into 5xx storms
        Lane { platform: Platform::Edison, scale: ClusterScale::Eighth, knee_cps: 130.0 },
        // one Dell node saturates ≈768 conn/s; past it the listen queue
        // drops SYNs and goodput *collapses* under retransmit backoff
        Lane { platform: Platform::Dell, scale: ClusterScale::Half, knee_cps: 768.0 },
    ]
}

/// The reference guard — [`GuardConfig::web_defaults`] with the
/// `--guard-deadline-ms` override applied. Shared with `fault_sweep
/// --guard`, which wants deadlines/breakers but no admission bucket.
pub(crate) fn reference_guard(budget: &RunBudget) -> GuardConfig {
    let mut g = GuardConfig::web_defaults();
    if let Some(ms) = budget.guard_deadline_ms {
        g.deadline = Budget::from_millis(ms);
    }
    g
}

/// Web-tier config of one (lane, rung, arm) cell. The guarded arm sizes
/// the LB admission bucket to the lane's knee: admit what the cluster
/// can actually serve, bounce the rest at the LB instead of queueing
/// them into timeout.
fn rung_cfg(
    lane: &Lane,
    mult: f64,
    guarded: bool,
    budget: &RunBudget,
    seed: u64,
) -> Result<StackConfig, SimError> {
    let scenario = WebScenario::table6_or_err(lane.platform, lane.scale)?;
    let mut cfg = StackConfig::new(
        scenario,
        WorkloadMix::lightest(),
        GenMode::Httperf { connections_per_sec: lane.knee_cps * mult, calls_per_conn: 6.6 },
        seed,
    );
    cfg.warmup = SimDuration::from_secs(budget.web_warmup_s);
    cfg.measure = SimDuration::from_secs(budget.web_measure_s);
    if guarded {
        let mut g = reference_guard(budget);
        g.admit_rate = lane.knee_cps;
        g.admit_burst = lane.knee_cps * 0.5;
        cfg.guard = g;
    }
    Ok(cfg)
}

/// The per-rung numbers one table row reports.
struct RungStats {
    goodput: f64,
    avail: f64,
    shed_pct: f64,
    degraded_pct: f64,
    errors: u64,
    p99_ms: f64,
    miss_pct: f64,
    rpj: f64,
}

/// Reduce one run to its row. Availability is full-fidelity completions
/// over `offered_req` — the demand the workload generator issued, a pure
/// function of the rung, identical across the two arms of a rung.
/// Degraded completions are subtracted from the numerator (a stub is not
/// a success); shed requests and LB-rejected connections (converted to
/// their foregone calls) are reported as fractions of the same demand.
/// The deadline-miss fraction applies the same `deadline_ms` cut to both
/// arms' delay samples, so the guards-off arm is scored against the
/// deadline it never knew about.
fn rung_stats(m: &mut Metrics, window: f64, deadline_ms: f64, offered_req: f64) -> RungStats {
    let full_ok = (m.completed_total - m.guard.degraded) as f64;
    let miss = if m.delays_ms.is_empty() {
        0.0
    } else {
        let late = m.delays_ms.samples().iter().filter(|&&d| d > deadline_ms).count();
        late as f64 / m.delays_ms.len() as f64
    };
    RungStats {
        goodput: m.completed as f64 / window,
        avail: (full_ok / offered_req.max(1.0)).min(1.0),
        shed_pct: (m.guard.shed as f64 + m.guard.lb_rejected as f64 * CALLS_PER_CONN)
            / offered_req.max(1.0)
            * 100.0,
        degraded_pct: m.guard.degraded as f64 / offered_req.max(1.0) * 100.0,
        errors: m.server_errors + m.client_errors,
        p99_ms: m.delays_ms.percentile(99.0),
        miss_pct: miss * 100.0,
        rpj: m.completed as f64 / m.energy_j.max(1e-9),
    }
}

/// Ramp offered load past the knee on each lane, guards off vs on, and
/// report the graceful-degradation effect: with guards on, availability
/// and p99 must strictly improve past the knee while the shed/degraded
/// fractions account for the load the guard refused to queue.
pub fn overload_sweep(
    budget: &RunBudget,
    exec: &Executor,
    tel: &mut Telemetry,
) -> Result<Report, RunError> {
    let lanes = lanes();
    // flatten (lane, rung, arm); the two arms of a rung share a seed so
    // they face the identical offered load
    let mut points: Vec<(usize, usize, bool)> = Vec::new();
    for li in 0..lanes.len() {
        for ri in 0..RUNGS.len() {
            for guarded in [false, true] {
                points.push((li, ri, guarded));
            }
        }
    }
    let results = exec.sweep(
        "overload_sweep",
        &points,
        tel,
        |_, &(li, ri, guarded)| {
            let l = &lanes[li];
            let arm = if guarded { "on" } else { "off" };
            format!("{:?}x{:.1}g{arm}", l.platform, RUNGS[ri])
        },
        |_, &(li, ri, guarded)| -> Result<Metrics, SimError> {
            let seed = derive_seed_at(ROOT_SEED, "overload_sweep", li * RUNGS.len() + ri);
            Ok(run(rung_cfg(&lanes[li], RUNGS[ri], guarded, budget, seed)?).metrics)
        },
    )?;
    if tel.is_on() {
        // trace the guarded Edison 1.5× rung — the row the brownout
        // spans, breaker gauges and queue-delay histogram come from
        let seed = derive_seed_at(ROOT_SEED, "overload_sweep", 2);
        let cfg = rung_cfg(&lanes[0], RUNGS[2], true, budget, seed)?;
        let mut world = run_traced(cfg, tel.child());
        tel.merge(world.take_telemetry());
    }

    let window = budget.web_measure_s as f64;
    let run_s = (budget.web_warmup_s + budget.web_measure_s) as f64;
    let deadline_ms = reference_guard(budget).deadline.as_millis().0;
    let mut rows = Vec::new();
    // per (lane, rung): [off, on] stats, for the past-knee comparisons
    let mut cells: Vec<Vec<[Option<RungStats>; 2]>> =
        lanes.iter().map(|_| (0..RUNGS.len()).map(|_| [None, None]).collect()).collect();
    for (&(li, ri, guarded), r) in points.iter().zip(results) {
        let mut m = r?;
        let l = &lanes[li];
        let offered = l.knee_cps * RUNGS[ri] * run_s * CALLS_PER_CONN;
        let s = rung_stats(&mut m, window, deadline_ms, offered);
        rows.push(vec![
            format!("{:?}", l.platform),
            format!("{:.0}", l.knee_cps * RUNGS[ri]),
            (if guarded { "on" } else { "off" }).to_string(),
            format!("{:.0}", s.goodput),
            format!("{:.2}%", s.avail * 100.0),
            format!("{:.1}%", s.shed_pct),
            format!("{:.1}%", s.degraded_pct),
            format!("{}", s.errors),
            format!("{:.1}", s.p99_ms),
            format!("{:.1}%", s.miss_pct),
            format!("{:.1}", s.rpj),
        ]);
        cells[li][ri][usize::from(guarded)] = Some(s);
    }
    let body = table(
        &[
            "platform", "conn/s", "guard", "goodput", "avail", "shed", "degraded", "errors",
            "p99 ms", "miss", "req/J",
        ],
        &rows,
    );

    // the acceptance comparisons: at the top rung (2× knee) the guarded
    // arm must strictly beat the unguarded one on availability and p99
    // (reference 1.0 = parity; measured > 1 = the guard won)
    let mut comparisons = Vec::new();
    for (li, lane) in lanes.iter().enumerate() {
        let top = RUNGS.len() - 1;
        let (Some(off), Some(on)) = (&cells[li][top][0], &cells[li][top][1]) else {
            continue;
        };
        let p = format!("{:?}", lane.platform);
        comparisons.push(Comparison::new(
            format!("{p} 2.0x knee availability, on/off (>1 = graceful)"),
            1.0,
            on.avail / off.avail.max(1e-9),
        ));
        comparisons.push(Comparison::new(
            format!("{p} 2.0x knee p99 delay, off/on (>1 = guard faster)"),
            1.0,
            off.p99_ms / on.p99_ms.max(1e-9),
        ));
        comparisons.push(Comparison::new(
            format!("{p} 2.0x knee deadline-miss fraction, off-on (pp)"),
            0.0,
            off.miss_pct - on.miss_pct,
        ));
    }
    Ok(Report {
        id: "overload_sweep".into(),
        title: "Goodput, availability & degradation past the knee, guards off vs on".into(),
        body,
        comparisons,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rungs_straddle_the_knee_and_lanes_cover_both_platforms() {
        assert!(RUNGS.iter().any(|&m| m < 1.0) && RUNGS.iter().any(|&m| m > 1.0));
        assert!(RUNGS.windows(2).all(|w| w[0] < w[1]), "rungs must ascend");
        let ls = lanes();
        assert!(ls.iter().any(|l| l.platform == Platform::Edison));
        assert!(ls.iter().any(|l| l.platform == Platform::Dell));
        for l in &ls {
            assert!(l.knee_cps > 0.0);
        }
    }

    #[test]
    fn deadline_override_reaches_the_reference_guard() {
        let mut b = RunBudget::quick();
        assert_eq!(reference_guard(&b), GuardConfig::web_defaults());
        b.guard_deadline_ms = Some(800);
        assert_eq!(reference_guard(&b).deadline, Budget::from_millis(800));
    }

    #[test]
    fn guards_strictly_improve_availability_and_p99_past_the_knee() {
        // the acceptance criterion in miniature: the Dell lane's 2× rung
        // (where the unguarded listen queue goes into congestion
        // collapse), both arms, quick budget — guards on must win on
        // availability AND p99 while actually shedding something
        let budget = RunBudget::quick();
        let ls = lanes();
        let top = RUNGS[RUNGS.len() - 1];
        let seed = derive_seed_at(ROOT_SEED, "overload_sweep", 2 * RUNGS.len() - 1);
        let mut off = run(rung_cfg(&ls[1], top, false, &budget, seed).unwrap()).metrics;
        let mut on = run(rung_cfg(&ls[1], top, true, &budget, seed).unwrap()).metrics;
        let g = &on.guard;
        assert_eq!(
            g.admitted,
            g.completed + g.degraded + g.shed + g.failed,
            "guard conservation identity violated: {g:?}"
        );
        let window = budget.web_measure_s as f64;
        let run_s = (budget.web_warmup_s + budget.web_measure_s) as f64;
        let offered = ls[1].knee_cps * top * run_s * CALLS_PER_CONN;
        let ms = reference_guard(&budget).deadline.as_millis().0;
        let s_off = rung_stats(&mut off, window, ms, offered);
        let s_on = rung_stats(&mut on, window, ms, offered);
        assert!(s_on.shed_pct + s_on.degraded_pct > 0.0, "guard never engaged");
        assert!(
            s_on.avail > s_off.avail,
            "availability must improve: on {:.4} vs off {:.4}",
            s_on.avail,
            s_off.avail
        );
        assert!(
            s_on.p99_ms < s_off.p99_ms,
            "p99 must improve: on {:.1} vs off {:.1}",
            s_on.p99_ms,
            s_off.p99_ms
        );
    }
}
