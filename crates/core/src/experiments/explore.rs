//! `explore` — systematic fault-interleaving exploration over the web
//! tier (the simexplore tentpole as a runnable experiment).
//!
//! The hand-written `fault_sweep` schedules are polite: crash, wait,
//! restart, with everything spaced out. This experiment asks what the
//! *worst* nearby schedule looks like. It plays a base crash/restart
//! plan against the brawny Dell pair (where losing one of two nodes is
//! exactly where schedule timing bites), observes the recovery window
//! the run reports (restart applied → back in LB rotation), and hands
//! base plan + observed windows to [`edison_simexplore::explore`]: start
//! jitter, pairwise reorders, and follow-up crashes probed *inside* the
//! recovery window, up to `--explore-budget` schedules. A schedule that
//! drops availability off a cliff is delta-debugged down to a minimal
//! reproducer and emitted as a `--fault-plan` spec, so the finding is a
//! one-flag rerun, not a prose description.
//!
//! With `--guard` the whole exploration plays against a tier running the
//! reference overload guard at a load near the pair's knee: the crash
//! trips node 0's circuit breaker, the observation run reports the
//! breaker's half-open window, and the explorer gains a "halfopen" probe
//! phase — follow-up crashes landed inside that window, hunting for
//! breaker-flap / shed-storm cliffs the polite base plan misses.
//!
//! Determinism: the base observation run, candidate enumeration, sweep
//! scoring, and shrinking are all pure functions of the budget and the
//! root seed — `repro explore` prints byte-identical reports at any
//! `--jobs` width (pinned by `tests/explore_gate.rs`).

use crate::experiments::faults::availability;
use crate::registry::RunBudget;
use crate::report::{table, Comparison, Report};
use edison_simcore::time::{SimDuration, SimTime};
use edison_simexplore::{explore, ExploreBudget, ExploreOutcome, PerturbSpace, ScheduleScore};
use edison_simfault::{FaultPlan, RecoveryWindow};
use edison_simrun::{derive_seed_at, Executor, RunError, SimError, ROOT_SEED};
use edison_simtel::Telemetry;
use edison_web::scenario::DEFAULT_RETRY_BUDGET;
use edison_web::stack::{run, GenMode, Metrics, StackConfig};
use edison_web::{ClusterScale, Platform, WebScenario, WorkloadMix};

/// The explored platform: the Dell pair at the paper's 1024-connection
/// load. One crashed node halves the tier, so availability is sharply
/// sensitive to *when* the second fault lands — the cliff the explorer
/// is built to find. (Edison's 24-way tier shrugs off the same probe.)
fn explore_cfg(budget: &RunBudget, seed: u64) -> Result<StackConfig, SimError> {
    let scenario = WebScenario::table6_or_err(Platform::Dell, ClusterScale::Full)?;
    // Guarded exploration runs hotter — near the pair's saturation knee —
    // so the crash strands enough in-flight requests on the dead node to
    // trip the reference breaker. The observed half-open windows then
    // become probe targets for the explorer's "halfopen" phase.
    let cps = if budget.guard { 1400.0 } else { 1024.0 };
    let mut cfg = StackConfig::new(
        scenario,
        WorkloadMix::lightest(),
        GenMode::Httperf { connections_per_sec: cps, calls_per_conn: 6.6 },
        seed,
    );
    cfg.warmup = SimDuration::from_secs(budget.web_warmup_s);
    cfg.measure = SimDuration::from_secs(budget.web_measure_s);
    cfg.retry_budget = DEFAULT_RETRY_BUDGET;
    Ok(cfg)
}

/// The base schedule explored when no `--fault-plan` override is given:
/// one polite crash/restart of node 0 early in the window — the kind of
/// plan a person writes by hand, and exactly the kind that misses the
/// recovery-window cliff.
fn base_plan(budget: &RunBudget) -> FaultPlan {
    let warmup = budget.web_warmup_s as f64;
    let measure = budget.web_measure_s as f64;
    let at = SimTime::from_secs_f64(warmup + measure * 0.15);
    FaultPlan::new().crash_restart(0, at, SimDuration::from_secs_f64((measure / 4.0).max(3.0)))
}

/// Score one candidate schedule: availability plus the worst single
/// recovery observed.
fn score(m: &Metrics) -> ScheduleScore {
    ScheduleScore {
        availability: availability(m),
        worst_recovery_s: if m.recovery_s.len() == 0 { 0.0 } else { m.recovery_s.max() },
    }
}

/// The full exploration, returned with its observed recovery windows and
/// (for `--guard` runs) circuit-breaker half-open windows, so the gate
/// test can assert on the machinery (the experiment wrapper below only
/// renders them).
pub fn run_explore(
    budget: &RunBudget,
    exec: &Executor,
    tel: &mut Telemetry,
) -> Result<(ExploreOutcome, Vec<RecoveryWindow>, Vec<RecoveryWindow>), RunError> {
    let seed = derive_seed_at(ROOT_SEED, "explore", 0);
    let mut cfg = explore_cfg(budget, seed)?;
    if budget.guard {
        // guarded exploration: breakers trip on the crashed backend, and
        // the observed half-open windows become probe targets below
        cfg.guard = crate::experiments::overload::reference_guard(budget);
    }
    let plan = match &budget.fault_plan {
        Some(custom) => custom.clone(),
        None => base_plan(budget),
    };

    // observation run: play the base schedule once and record where the
    // recovery window (restart applied -> back in rotation) and, when
    // guarded, the breaker half-open windows actually lay
    let mut obs_cfg = cfg.clone();
    obs_cfg.fault_plan = plan.clone();
    let obs = run(obs_cfg).metrics;
    let windows = obs.recovery_windows;
    let halfopen = obs.guard.breaker_windows;

    // every web node is a probe target: the cliff is a crash of a
    // *healthy* node while the window's node is still out of rotation
    let probe_nodes: Vec<usize> = (0..cfg.scenario.web_servers).collect();
    let space = PerturbSpace::full(
        SimDuration::from_secs(1),
        windows.clone(),
        probe_nodes,
        SimDuration::from_secs_f64((budget.web_measure_s as f64 / 4.0).max(3.0)),
    )
    .with_halfopen_windows(halfopen.clone());
    // cliff threshold: a full availability point below the (near-100%)
    // base. The worst interleaving blacks out dispatch for ~the RISE
    // window — a second or two of a multi-second measure window — which
    // lands at 1.5–2.5 points here; polite schedules stay at ~100%.
    let xbudget = ExploreBudget::new(budget.explore_budget, ROOT_SEED).with_cliff_drop(0.01);
    let outcome = explore(&plan, &space, &xbudget, exec, tel, |candidate| {
        let mut c = cfg.clone();
        c.fault_plan = candidate.clone();
        Ok(score(&run(c).metrics))
    })?;
    Ok((outcome, windows, halfopen))
}

/// Registry entry: run the exploration and render base vs worst, the
/// worst schedule's spec, and the shrunk reproducer when a cliff fired.
pub fn explore_experiment(
    budget: &RunBudget,
    exec: &Executor,
    tel: &mut Telemetry,
) -> Result<Report, RunError> {
    let (outcome, windows, halfopen) = run_explore(budget, exec, tel)?;
    let rows = vec![
        vec![
            "base".to_string(),
            format!("{:.2}%", outcome.base.availability * 100.0),
            format!("{:.2}", outcome.base.worst_recovery_s),
            "-".to_string(),
        ],
        vec![
            "worst".to_string(),
            format!("{:.2}%", outcome.worst.availability * 100.0),
            format!("{:.2}", outcome.worst.worst_recovery_s),
            format!("{} ({})", outcome.worst_phase, outcome.worst_label),
        ],
    ];
    let mut body = table(&["schedule", "avail", "wc rec s", "found by"], &rows);
    body.push_str(&format!(
        "\nschedules evaluated: {} (budget {})\n",
        outcome.schedules_run, budget.explore_budget
    ));
    for w in &windows {
        body.push_str(&format!(
            "observed recovery window: node {} [{:.2}s, {:.2}s]\n",
            w.node,
            w.start.as_secs_f64(),
            w.end.as_secs_f64()
        ));
    }
    for w in &halfopen {
        body.push_str(&format!(
            "observed breaker half-open window: node {} [{:.2}s, {:.2}s]\n",
            w.node,
            w.start.as_secs_f64(),
            w.end.as_secs_f64()
        ));
    }
    body.push_str("\nworst schedule (--fault-plan spec):\n");
    body.push_str(&outcome.worst_spec);
    match &outcome.cliff {
        Some(cliff) => {
            body.push_str(&format!(
                "\navailability cliff: {:.1} points below base ({} shrink probes)\n",
                cliff.depth * 100.0,
                cliff.probes
            ));
            body.push_str(&format!(
                "minimal reproducer ({} fault{}):\n",
                cliff.reproducer.len(),
                if cliff.reproducer.len() == 1 { "" } else { "s" }
            ));
            body.push_str(&cliff.spec);
        }
        None => body.push_str("\nno availability cliff within the explored neighbourhood\n"),
    }
    Ok(Report {
        id: "explore".into(),
        title: "Worst-case fault-schedule exploration with shrunk reproducers".into(),
        body,
        comparisons: vec![Comparison::new(
            "worst-case availability relative to base (<1 ⇒ a worse schedule exists)",
            1.0,
            outcome.worst.availability / outcome.base.availability.max(1e-9),
        )],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_plan_is_a_polite_early_crash_restart() {
        let b = RunBudget::quick();
        let p = base_plan(&b);
        assert_eq!(p.len(), 2);
        assert_eq!(p, base_plan(&b), "pure function of the budget");
        // lands inside the window with room for recovery before the end
        let window_end = SimTime::from_secs(b.web_warmup_s + b.web_measure_s);
        assert!(p.faults()[0].at < window_end);
    }
}
