//! Table 10: the 3-year TCO comparison (§6).

use crate::paper;
use crate::report::{table, Comparison, Report};

/// Table 10 via Equation (1) over the preset power/cost constants.
pub fn table10() -> Report {
    let rows_model = edison_tco::table10();
    let mut rows = Vec::new();
    let mut comparisons = Vec::new();
    for (row, (name, pd, pe)) in rows_model.iter().zip(paper::TABLE10) {
        rows.push(vec![
            row.scenario.to_string(),
            format!("${:.1}", row.dell_total),
            format!("${:.1}", row.edison_total),
            format!("{:.0}%", row.saving() * 100.0),
        ]);
        comparisons.push(Comparison::new(format!("{name}: Dell TCO ($)"), *pd, row.dell_total));
        comparisons.push(Comparison::new(format!("{name}: Edison TCO ($)"), *pe, row.edison_total));
    }
    Report {
        id: "table10".into(),
        title: "TCO comparison (Table 10)".into(),
        body: table(&["Scenario", "Dell cluster", "Edison cluster", "saving"], &rows),
        comparisons,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table10_report_is_tight_to_paper() {
        let r = table10();
        assert_eq!(r.comparisons.len(), 8);
        for c in &r.comparisons {
            assert!((0.98..1.02).contains(&c.ratio()), "{}: {}", c.metric, c.ratio());
        }
    }
}
