//! `profile_probe` — the simprof demonstration experiment.
//!
//! Runs one web point and one small MapReduce job twice each: once plain,
//! once with engine self-profiling, then (a) verifies observer
//! equivalence — the profiled run's metrics are identical to the plain
//! run's — and (b) renders the per-event-kind / per-phase breakdown the
//! profiler collected. With an enabled sink (`repro profile_probe
//! --metrics m.prom --profile`) the `profile_*` vocabulary lands in the
//! exported artefacts too.

use super::mapred;
use crate::registry::RunBudget;
use crate::report::{table, Comparison, Report};
use edison_mapreduce::engine::{
    run_job_checked, run_job_profiled_checked, ClusterSetup,
};
use edison_simcore::EngineProfile;
use edison_simrun::{derive_seed, Executor, RunError, ROOT_SEED};
use edison_simtel::Telemetry;
use edison_web::httperf::CALLS_PER_CONN;
use edison_web::stack::{self, GenMode, StackConfig};
use edison_web::{ClusterScale, Platform, WebScenario, WorkloadMix};

/// The web point: eighth-scale Edison tier, lightest mix, mid-curve load —
/// the same shape the smoke run uses, small enough to run twice.
fn web_cfg(budget: &RunBudget) -> Result<StackConfig, RunError> {
    let scenario = WebScenario::table6_or_err(Platform::Edison, ClusterScale::Eighth)?;
    let mut cfg = StackConfig::new(
        scenario,
        WorkloadMix::lightest(),
        GenMode::Httperf { connections_per_sec: 64.0, calls_per_conn: CALLS_PER_CONN },
        derive_seed(ROOT_SEED, "profile:web", 0),
    );
    cfg.warmup = edison_simcore::time::SimDuration::from_secs(budget.web_warmup_s);
    cfg.measure = edison_simcore::time::SimDuration::from_secs(budget.web_measure_s);
    Ok(cfg)
}

/// Per-kind rows for one world's profile, in the profile's (sorted) order.
fn kind_rows(world: &str, profile: &EngineProfile, phase_of: fn(&'static str) -> &'static str) -> Vec<Vec<String>> {
    profile
        .kinds
        .iter()
        .map(|(kind, s)| {
            vec![
                world.into(),
                (*kind).into(),
                phase_of(kind).into(),
                format!("{}", s.dispatched),
                format!("{}", s.scheduled),
                format!("{:.3}", s.advance.as_secs_f64()),
            ]
        })
        .collect()
}

/// One heap/engine summary row per world.
fn heap_row(world: &str, profile: &EngineProfile) -> Vec<String> {
    vec![
        world.into(),
        format!("{}", profile.events()),
        format!("{}", profile.heap_pushes),
        format!("{}", profile.heap_pops),
        format!("{}", profile.heap_depth_hwm),
        format!("{:.1}", profile.sim_seconds()),
    ]
}

/// Run the probe pair and render the breakdown.
pub fn profile_probe(
    budget: &RunBudget,
    _exec: &Executor,
    tel: &mut Telemetry,
) -> Result<Report, RunError> {
    // web: plain vs profiled, same seed — metrics must be identical
    let plain = stack::run(web_cfg(budget)?);
    let (mut web_world, web_prof) = stack::run_profiled(web_cfg(budget)?, Telemetry::profiled());
    let web_eq = plain.metrics.completed == web_world.metrics.completed
        && plain.metrics.server_errors == web_world.metrics.server_errors
        && plain.metrics.client_errors == web_world.metrics.client_errors
        && plain.metrics.energy_j.to_bits() == web_world.metrics.energy_j.to_bits();
    if tel.is_on() {
        tel.merge(web_world.take_telemetry());
    }

    // mapreduce: logcount2 on 4 Edison nodes, plain vs profiled
    let base = ClusterSetup::edison(4);
    let mut setup = mapred::setup_for("logcount2", &base);
    setup.seed = derive_seed(ROOT_SEED, "profile:mr", 0);
    let job = mapred::profile_for("logcount2", &setup)?;
    let plain_job = run_job_checked(&job, &setup)?;
    let (prof_job, jtel, mr_prof) = run_job_profiled_checked(&job, &setup, Telemetry::profiled())?;
    let mr_eq = plain_job.finish_time_s.to_bits() == prof_job.finish_time_s.to_bits()
        && plain_job.energy_j.to_bits() == prof_job.energy_j.to_bits();
    if tel.is_on() {
        tel.merge(jtel);
    }

    let mut rows = kind_rows("web", &web_prof, stack::phase_of);
    rows.extend(kind_rows("mapreduce", &mr_prof, edison_mapreduce::engine::phase_of));
    let kinds = table(&["world", "kind", "phase", "dispatched", "scheduled", "sim-advance s"], &rows);
    let heap = table(
        &["world", "events", "heap pushes", "heap pops", "depth HWM", "sim s"],
        &[heap_row("web", &web_prof), heap_row("mapreduce", &mr_prof)],
    );
    Ok(Report {
        id: "profile_probe".into(),
        title: "PROBE: engine self-profile (per-kind/per-phase breakdown)".into(),
        body: format!("{kinds}\n{heap}"),
        comparisons: vec![
            Comparison::new("web profiled run identical to plain (1 = yes)", 1.0, f64::from(web_eq)),
            Comparison::new("mapreduce profiled run identical to plain (1 = yes)", 1.0, f64::from(mr_eq)),
            Comparison::new("web events profiled (>0 expected)", 1.0, (web_prof.events() as f64).min(1.0)),
            Comparison::new("mapreduce events profiled (>0 expected)", 1.0, (mr_prof.events() as f64).min(1.0)),
        ],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_confirms_observer_equivalence() {
        let mut tel = Telemetry::off();
        let r = profile_probe(&RunBudget::quick(), &Executor::serial(), &mut tel)
            .expect("probe healthy");
        assert_eq!(r.id, "profile_probe");
        for c in &r.comparisons {
            assert!((c.measured - 1.0).abs() < 1e-12, "{}: {}", c.metric, c.measured);
        }
        // breakdown covers both worlds and the hot request path
        assert!(r.body.contains("request-path"));
        assert!(r.body.contains("task-exec"));
        // disabled parent sink stays untouched
        assert!(!tel.is_on());
    }

    #[test]
    fn probe_records_profile_metrics_when_sink_enabled() {
        let mut tel = Telemetry::on();
        profile_probe(&RunBudget::quick(), &Executor::serial(), &mut tel).expect("probe healthy");
        let prom = tel.prometheus_text();
        assert!(prom.contains("profile_events_total"), "profile vocabulary exported");
        assert!(prom.contains("profile_phase_advance_seconds"));
        assert!(prom.contains("world=\"web\""));
        assert!(prom.contains("world=\"mapreduce\""));
    }
}
