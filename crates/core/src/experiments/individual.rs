//! Individual-server artefacts: Tables 1–6 and 9, Figures 2–3, and the §4
//! in-text measurements.

use crate::paper;
use crate::report::{table, trim_float, Comparison, Report, Series};
use edison_hw::presets;
use edison_microbench::{dhrystone, network, storage, sysbench_cpu, sysbench_mem};

/// Table 1: related-work micro-server specifications (static data).
pub fn table1() -> Report {
    let rows: Vec<Vec<String>> = presets::related_work()
        .into_iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                r.cpu.to_string(),
                format!("{}MB", r.memory_mib),
                if r.sensor_class { "sensor".into() } else { "mobile".into() },
            ]
        })
        .collect();
    Report {
        id: "table1".into(),
        title: "Micro server specifications in related work".into(),
        body: table(&["platform", "CPU", "memory", "class"], &rows),
        comparisons: vec![],
    }
}

/// Table 2: resource ratios and nodes-to-replace arithmetic.
pub fn table2() -> Report {
    let e = presets::edison();
    let d = presets::dell_r620();
    let (cpu, ram, nic) = e.replacement_ratios(&d);
    let n = e.nodes_to_replace(&d);
    let rows = vec![
        vec!["CPU".into(), "2x500MHz".into(), "6x2GHz".into(), format!("{cpu:.0} Edison servers")],
        vec!["RAM".into(), "1GB".into(), "4x4GB".into(), format!("{ram:.0} Edison servers")],
        vec!["NIC".into(), "100Mbps".into(), "1Gbps".into(), format!("{nic:.0} Edison servers")],
    ];
    let mut body = table(&["Resource", "Edison", "Dell R620", "To Replace a Dell"], &rows);
    body.push_str(&format!("Estimated number of Edison servers: max({cpu:.0}, {ram:.0}, {nic:.0}) = {n}\n"));
    Report {
        id: "table2".into(),
        title: "Comparing Edison micro servers to Dell servers".into(),
        body,
        comparisons: vec![
            Comparison::new("CPU nameplate ratio", 12.0, cpu),
            Comparison::new("RAM ratio", 16.0, ram),
            Comparison::new("NIC ratio", 10.0, nic),
            Comparison::new("Edison nodes to replace one Dell", 16.0, n as f64),
        ],
    }
}

/// Table 3: idle/busy power of nodes and clusters.
pub fn table3() -> Report {
    let bare = presets::edison_bare().power;
    let e = presets::edison().power;
    let d = presets::dell_r620().power;
    let rows = vec![
        vec!["1 Edison without Ethernet adaptor".into(), format!("{:.2}W", bare.node_idle()), format!("{:.2}W", bare.node_busy())],
        vec!["1 Edison with Ethernet adaptor".into(), format!("{:.2}W", e.node_idle()), format!("{:.2}W", e.node_busy())],
        vec!["Edison cluster of 35 nodes".into(), format!("{:.1}W", 35.0 * e.node_idle()), format!("{:.1}W", 35.0 * e.node_busy())],
        vec!["1 Dell server".into(), format!("{:.0}W", d.node_idle()), format!("{:.0}W", d.node_busy())],
        vec!["Dell cluster of 3 nodes".into(), format!("{:.0}W", 3.0 * d.node_idle()), format!("{:.0}W", 3.0 * d.node_busy())],
    ];
    Report {
        id: "table3".into(),
        title: "Power consumption of Edison and Dell servers".into(),
        body: table(&["Server state", "Idle", "Busy"], &rows),
        comparisons: vec![
            Comparison::new("Edison cluster idle (W)", 49.0, 35.0 * e.node_idle()),
            Comparison::new("Edison cluster busy (W)", 58.8, 35.0 * e.node_busy()),
            Comparison::new("Dell cluster idle (W)", 156.0, 3.0 * d.node_idle()),
            Comparison::new("Dell cluster busy (W)", 327.0, 3.0 * d.node_busy()),
        ],
    }
}

/// Table 4: software versions (static metadata, documentation parity).
pub fn table4() -> Report {
    let rows: Vec<Vec<String>> = [
        ("Dhrystone", "2.1", "2.1"),
        ("dd", "8.13", "8.4"),
        ("ioping", "0.9.35", "0.9.35"),
        ("iperf3", "3.1", "3.1"),
        ("Sysbench", "0.5", "0.5"),
        ("PHP", "5.4.41", "5.3.3"),
        ("Lighttpd", "1.4.31", "1.4.35"),
        ("Memcached", "1.0.8", "0.31"),
        ("Hadoop", "2.5.0", "2.5.0"),
        ("MySQL", "5.5.44", "5.1.73"),
        ("HAProxy", "1.5.8", "1.5.2"),
    ]
    .iter()
    .map(|(s, e, d)| vec![s.to_string(), e.to_string(), d.to_string()])
    .collect();
    Report {
        id: "table4".into(),
        title: "Test softwares".into(),
        body: table(&["Software", "Version on Edison", "Version on Dell"], &rows),
        comparisons: vec![],
    }
}

/// §4.1 Dhrystone DMIPS.
pub fn sec41_dmips() -> Report {
    let e = dhrystone::run(&presets::edison(), 100_000_000);
    let d = dhrystone::run(&presets::dell_r620(), 100_000_000);
    let body = format!(
        "Edison: {:.1} DMIPS ({:.1} s for 100M runs)\nDell:   {:.1} DMIPS ({:.1} s for 100M runs)\nsingle-thread gap: {:.1}x (Edison core at {:.1}% of a Dell core)\n",
        e.dmips,
        e.seconds,
        d.dmips,
        d.seconds,
        d.dmips / e.dmips,
        100.0 * e.dmips / d.dmips,
    );
    Report {
        id: "sec41_dmips".into(),
        title: "Dhrystone CPU test (Section 4.1)".into(),
        body,
        comparisons: vec![
            Comparison::new("Edison DMIPS", paper::DMIPS.0, e.dmips),
            Comparison::new("Dell DMIPS", paper::DMIPS.1, d.dmips),
        ],
    }
}

/// Figures 2 and 3: sysbench CPU total/response time vs threads.
pub fn fig02_03() -> Report {
    let e = sysbench_cpu::sweep(&presets::edison());
    let d = sysbench_cpu::sweep(&presets::dell_r620());
    let series = vec![
        Series { label: "edison total (s)".into(), points: e.iter().map(|r| (r.threads as f64, r.total_seconds)).collect() },
        Series { label: "edison resp (ms)".into(), points: e.iter().map(|r| (r.threads as f64, r.avg_response_ms)).collect() },
        Series { label: "dell total (s)".into(), points: d.iter().map(|r| (r.threads as f64, r.total_seconds)).collect() },
        Series { label: "dell resp (ms)".into(), points: d.iter().map(|r| (r.threads as f64, r.avg_response_ms)).collect() },
    ];
    Report {
        id: "fig02_03".into(),
        title: "Sysbench CPU test, Edison (Fig 2) and Dell (Fig 3)".into(),
        body: crate::report::series_table("threads", &series),
        comparisons: vec![
            Comparison::new("Edison 1-thread total (s)", 600.0, e[0].total_seconds),
            Comparison::new("single-thread ratio", 16.5, e[0].total_seconds / d[0].total_seconds),
            Comparison::new("Dell 8-thread resp (ms)", 4.0, d[3].avg_response_ms),
        ],
    }
}

/// §4.2 memory-bandwidth sweep.
pub fn sec42_membw() -> Report {
    let e = sysbench_mem::sweep(&presets::edison());
    let d = sysbench_mem::sweep(&presets::dell_r620());
    let body = format!(
        "Edison: peak {:.2} GB/s, saturates at {} threads, {} KiB blocks\nDell:   peak {:.1} GB/s, saturates at {} threads, {} KiB blocks\ngap: {:.1}x\n",
        e.peak / 1e9,
        e.saturation_threads,
        e.saturation_block / 1024,
        d.peak / 1e9,
        d.saturation_threads,
        d.saturation_block / 1024,
        d.peak / e.peak,
    );
    Report {
        id: "sec42_membw".into(),
        title: "Sysbench memory bandwidth (Section 4.2)".into(),
        body,
        comparisons: vec![
            Comparison::new("Edison peak (GB/s)", paper::MEM_BW_GBPS.0, e.peak / 1e9),
            Comparison::new("Dell peak (GB/s)", paper::MEM_BW_GBPS.1, d.peak / 1e9),
            Comparison::new("Edison saturation threads", 2.0, e.saturation_threads as f64),
            Comparison::new("Dell saturation threads", 12.0, d.saturation_threads as f64),
        ],
    }
}

/// Table 5: storage throughput and latency.
pub fn table5() -> Report {
    let e = storage::table5(&presets::edison());
    let d = storage::table5(&presets::dell_r620());
    let rows = vec![
        vec!["Write throughput".into(), format!("{:.1} MB/s", e.write_mbps), format!("{:.1} MB/s", d.write_mbps)],
        vec!["Buffered write throughput".into(), format!("{:.1} MB/s", e.buffered_write_mbps), format!("{:.1} MB/s", d.buffered_write_mbps)],
        vec!["Read throughput".into(), format!("{:.1} MB/s", e.read_mbps), format!("{:.1} MB/s", d.read_mbps)],
        vec!["Buffered read throughput".into(), format!("{:.0} MB/s", e.buffered_read_mbps), format!("{:.0} MB/s", d.buffered_read_mbps)],
        vec!["Write latency".into(), format!("{:.1} ms", e.write_latency_ms), format!("{:.2} ms", d.write_latency_ms)],
        vec!["Read latency".into(), format!("{:.1} ms", e.read_latency_ms), format!("{:.3} ms", d.read_latency_ms)],
    ];
    Report {
        id: "table5".into(),
        title: "Storage I/O test comparison".into(),
        body: table(&["", "Edison", "Dell"], &rows),
        comparisons: vec![
            Comparison::new("Edison read (MB/s)", paper::table5::READ.0, e.read_mbps),
            Comparison::new("Dell read (MB/s)", paper::table5::READ.1, d.read_mbps),
            Comparison::new("Edison buffered write (MB/s)", paper::table5::BUFFERED_WRITE.0, e.buffered_write_mbps),
            Comparison::new("Dell buffered write (MB/s)", paper::table5::BUFFERED_WRITE.1, d.buffered_write_mbps),
            Comparison::new("Edison write latency (ms)", paper::table5::WRITE_LATENCY.0, e.write_latency_ms),
            Comparison::new("Dell read latency (ms)", paper::table5::READ_LATENCY.1, d.read_latency_ms),
        ],
    }
}

/// §4.4 network tests: iperf throughput and ping RTTs.
pub fn sec44_net() -> Report {
    use network::{iperf, ping_rtt_ms, Pair, Proto};
    let e = presets::edison();
    let d = presets::dell_r620();
    let gb = 1_000_000_000;
    let mut rows = Vec::new();
    let mut comparisons = Vec::new();
    for (pair, label) in [
        (Pair::DellToDell, "Dell to Dell"),
        (Pair::DellToEdison, "Dell to Edison"),
        (Pair::EdisonToEdison, "Edison to Edison"),
    ] {
        let tcp = iperf(pair, Proto::Tcp, gb, &e, &d);
        let udp = iperf(pair, Proto::Udp, gb, &e, &d);
        let rtt = ping_rtt_ms(pair, &e, &d);
        rows.push(vec![
            label.to_string(),
            format!("{:.1}", tcp.mbits_per_sec),
            format!("{:.1}", udp.mbits_per_sec),
            format!("{rtt:.2}"),
        ]);
        let (ptcp, pudp, prtt) = match pair {
            Pair::DellToDell => (paper::IPERF_DELL_TCP, paper::IPERF_DELL_UDP, paper::PING_MS.0),
            Pair::DellToEdison => (paper::IPERF_EDISON_TCP, paper::IPERF_EDISON_UDP, paper::PING_MS.1),
            Pair::EdisonToEdison => (paper::IPERF_EDISON_TCP, paper::IPERF_EDISON_UDP, paper::PING_MS.2),
        };
        comparisons.push(Comparison::new(format!("{label} TCP (Mbit/s)"), ptcp, tcp.mbits_per_sec));
        comparisons.push(Comparison::new(format!("{label} UDP (Mbit/s)"), pudp, udp.mbits_per_sec));
        comparisons.push(Comparison::new(format!("{label} ping RTT (ms)"), prtt, rtt));
    }
    Report {
        id: "sec44_net".into(),
        title: "Network iperf/ping tests (Section 4.4)".into(),
        body: table(&["pair", "TCP Mbit/s", "UDP Mbit/s", "RTT ms"], &rows),
        comparisons,
    }
}

/// Table 6: cluster configuration and scale factors (static).
pub fn table6() -> Report {
    use edison_web::{ClusterScale, Platform, WebScenario};
    let scales = [
        (ClusterScale::Full, "Full"),
        (ClusterScale::Half, "1/2"),
        (ClusterScale::Quarter, "1/4"),
        (ClusterScale::Eighth, "1/8"),
    ];
    let mut rows = Vec::new();
    for (label, pick) in [
        ("# Edison web servers", 0usize),
        ("# Edison cache servers", 1),
        ("# Dell web servers", 2),
        ("# Dell cache servers", 3),
    ] {
        let mut row = vec![label.to_string()];
        for (scale, _) in scales {
            let cell = match pick {
                0 | 1 => {
                    let s = WebScenario::table6(Platform::Edison, scale).unwrap();
                    if pick == 0 { s.web_servers } else { s.cache_servers }.to_string()
                }
                _ => match WebScenario::table6(Platform::Dell, scale) {
                    Some(s) => if pick == 2 { s.web_servers } else { s.cache_servers }.to_string(),
                    None => "N/A".into(),
                },
            };
            row.push(cell);
        }
        rows.push(row);
    }
    Report {
        id: "table6".into(),
        title: "Cluster configuration and scale factor".into(),
        body: table(&["Cluster size", "Full", "1/2", "1/4", "1/8"], &rows),
        comparisons: vec![],
    }
}

/// Table 9: TCO notations and values (static constants check).
pub fn table9() -> Report {
    let e = presets::edison();
    let d = presets::dell_r620();
    let rows = vec![
        vec!["Cs,Edison".into(), "Cost of 1 Edison node".into(), format!("${:.0}", e.unit_cost_usd)],
        vec!["Cs,Dell".into(), "Cost of 1 Dell server".into(), format!("${:.0}", d.unit_cost_usd)],
        vec!["Ceph".into(), "Cost of electricity".into(), format!("${:.2}/kWh", edison_tco::ELECTRICITY_PER_KWH)],
        vec!["Ts".into(), "Server lifetime".into(), format!("{:.0} years", edison_tco::LIFETIME_YEARS)],
        vec!["Uh".into(), "High utilization rate".into(), format!("{:.0}%", edison_tco::U_HIGH * 100.0)],
        vec!["Ul".into(), "Low utilization rate".into(), format!("{:.0}%", edison_tco::U_LOW * 100.0)],
        vec!["Pp,Dell".into(), "Peak power of 1 Dell".into(), format!("{:.0}W", d.power.node_busy())],
        vec!["Pp,Edison".into(), "Peak power of 1 Edison".into(), format!("{:.2}W", e.power.node_busy())],
        vec!["Pi,Dell".into(), "Idle power of 1 Dell".into(), format!("{:.0}W", d.power.node_idle())],
        vec!["Pi,Edison".into(), "Idle power of 1 Edison".into(), format!("{:.2}W", e.power.node_idle())],
    ];
    Report {
        id: "table9".into(),
        title: "TCO notations and values".into(),
        body: table(&["Notation", "Description", "Value"], &rows),
        comparisons: vec![
            Comparison::new("Edison node cost ($)", 120.0, e.unit_cost_usd),
            Comparison::new("Dell node cost ($)", 2500.0, d.unit_cost_usd),
        ],
    }
}

/// Convenience: format a (threads → seconds) sweep row for docs.
pub fn fmt_sweep(rows: &[(u32, f64)]) -> String {
    rows.iter()
        .map(|(t, s)| format!("{t} threads: {}s", trim_float(*s)))
        .collect::<Vec<_>>()
        .join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_tables_render() {
        for r in [table1(), table2(), table3(), table4(), table6(), table9()] {
            assert!(!r.body.is_empty());
            assert!(!r.id.is_empty());
        }
    }

    #[test]
    fn measured_sections_are_close_to_paper() {
        for r in [sec41_dmips(), sec42_membw(), table5(), sec44_net()] {
            for c in &r.comparisons {
                let ratio = c.ratio();
                assert!(
                    (0.9..1.1).contains(&ratio),
                    "{} in {}: ratio {ratio}",
                    c.metric,
                    r.id
                );
            }
        }
    }

    #[test]
    fn fig02_03_comparisons_within_band() {
        let r = fig02_03();
        for c in &r.comparisons {
            assert!((0.8..1.25).contains(&c.ratio()), "{}: {}", c.metric, c.ratio());
        }
    }
}
