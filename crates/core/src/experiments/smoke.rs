//! End-to-end smoke experiment: one quick web point plus one small
//! MapReduce job. This is the `repro smoke` / `cargo repro-smoke` target —
//! fast enough for CI, and it exercises every telemetry surface (request
//! spans, task-phase spans, counters, histograms, power timelines) when a
//! sink is enabled via `--trace` / `--metrics`.

use super::mapred;
use crate::registry::RunBudget;
use crate::report::{table, Comparison, Report};
use edison_mapreduce::engine::{run_job_traced, ClusterSetup};
use edison_simrun::{derive_seed, Executor, RunError, ROOT_SEED};
use edison_simtel::Telemetry;
use edison_web::httperf::{self, RunOpts};
use edison_web::{ClusterScale, Platform, WebScenario, WorkloadMix};

/// Run the smoke pair. Unlike the figure experiments (which trace one
/// representative point on the side), the smoke runs ARE the traced runs:
/// whatever the sink's state, each simulation executes exactly once, in
/// order, on the caller's thread (no executor fan-out — two points are
/// not worth a pool, and serial runs keep the traced output canonical).
pub fn smoke(budget: &RunBudget, _exec: &Executor, tel: &mut Telemetry) -> Result<Report, RunError> {
    // child sinks inherit the enabled + profiling flags, so `--profile`
    // reaches the smoke runs themselves
    let proto = tel.child();
    let sink = || proto.child();

    // web: eighth-scale Edison tier at a mid-curve load
    let scenario = WebScenario::table6_or_err(Platform::Edison, ClusterScale::Eighth)?;
    let opts = RunOpts {
        seed: derive_seed(ROOT_SEED, "smoke:web", 0),
        warmup_s: budget.web_warmup_s,
        measure_s: budget.web_measure_s,
        ..RunOpts::default()
    };
    let (web, wtel) = httperf::run_point_traced(&scenario, WorkloadMix::lightest(), 64.0, opts, sink());
    tel.merge(wtel);

    // mapreduce: logcount2 on a 4-node Edison cluster (seconds, not minutes)
    let base = ClusterSetup::edison(4);
    let mut setup = mapred::setup_for("logcount2", &base);
    setup.seed = derive_seed(ROOT_SEED, "smoke:mr:logcount2", 0);
    let profile = mapred::profile_for("logcount2", &setup)?;
    let (job, jtel) = run_job_traced(&profile, &setup, sink());
    tel.merge(jtel);

    let rows = vec![
        vec![
            "web (3 Edison, mix=lightest, conc=64)".into(),
            format!("{:.0} req/s", web.requests_per_sec),
            format!("{:.2} ms mean delay", web.mean_delay_ms),
            format!("{:.1} W", web.mean_power_w),
        ],
        vec![
            "mapreduce (logcount2, 4 Edison)".into(),
            format!("{:.0} s", job.finish_time_s),
            format!("{:.0} J", job.energy_j),
            format!("{:.0}% data-local", 100.0 * job.data_local_fraction),
        ],
    ];
    Ok(Report {
        id: "smoke".into(),
        title: "End-to-end smoke run (web + MapReduce, telemetry-ready)".into(),
        body: table(&["run", "throughput / time", "delay / energy", "power / locality"], &rows),
        comparisons: vec![
            Comparison::new("web point completes requests (>0 expected)", 1.0, web.requests_per_sec.min(1.0)),
            Comparison::new("MapReduce job finishes (>0 s expected)", 1.0, job.finish_time_s.min(1.0)),
        ],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_runs_and_traces() {
        let mut tel = Telemetry::on();
        let r = smoke(&RunBudget::quick(), &Executor::serial(), &mut tel).expect("smoke healthy");
        assert_eq!(r.id, "smoke");
        assert!(r.body.contains("req/s"));
        // both worlds contributed telemetry
        let trace = tel.chrome_trace_json();
        assert!(trace.contains("http_request"), "web spans present");
        assert!(trace.contains("map_task"), "mapreduce spans present");
        let prom = tel.prometheus_text();
        assert!(prom.contains("web_requests_total"));
        assert!(prom.contains("mr_maps_completed_total"));
        assert!(prom.contains("node_power_watts"));
    }

    #[test]
    fn smoke_off_is_clean() {
        let mut tel = Telemetry::off();
        let r = smoke(&RunBudget::quick(), &Executor::serial(), &mut tel).expect("smoke healthy");
        assert!(!r.body.is_empty());
        assert!(tel.chrome_trace_json().contains("\"traceEvents\": []") || !tel.chrome_trace_json().contains("http_request"));
    }
}
