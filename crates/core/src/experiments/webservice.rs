//! Web-service experiments: Figures 4–11 and Table 7 (§5.1).
//!
//! Each figure point is one full `edison_web::stack` run; sweep points are
//! independent, so they fan out over the simrun [`Executor`] (bounded
//! worker pool, input-order results, per-point panic isolation). Every
//! point draws its seed from [`derive_seed_at`] keyed by the sweep's
//! stream id, so a single point can be reproduced outside its sweep.

use crate::chart::{bar_chart, chart, Scale};
use crate::paper;
use crate::registry::RunBudget;
use crate::report::{series_table, table, Comparison, Report, Series};
use edison_simrun::{derive_seed_at, Executor, RunError, SimError, ROOT_SEED};
use edison_simtel::Telemetry;
use edison_web::httperf::{self, concurrency_sweep, HttperfResult, RunOpts};
use edison_web::pyclient;
use edison_web::{ClusterScale, Platform, WebScenario, WorkloadMix};

/// When the sink is enabled, re-run one representative point with tracing
/// and merge the result. Sweeps themselves run untraced on worker threads;
/// a single traced run gives the spans/power timelines the exporters need
/// without serialising the whole sweep.
fn trace_representative(
    tel: &mut Telemetry,
    scenario: &WebScenario,
    mix: WorkloadMix,
    concurrency: f64,
    budget: &RunBudget,
) {
    if !tel.is_on() {
        return;
    }
    let seed = derive_seed_at(ROOT_SEED, &format!("trace:{}", stream_id(scenario, mix)), 0);
    let (_, t) = httperf::run_point_traced(scenario, mix, concurrency, opts(budget, seed), tel.child());
    tel.merge(t);
}

/// [`trace_representative`] on the eighth-scale Edison tier — the cheapest
/// Table 6 configuration, used as the default traced point.
fn trace_eighth(tel: &mut Telemetry, mix: WorkloadMix, concurrency: f64, budget: &RunBudget) {
    if let Some(sc) = WebScenario::table6(Platform::Edison, ClusterScale::Eighth) {
        trace_representative(tel, &sc, mix, concurrency, budget);
    }
}

/// Label a scenario the way the paper's legends do ("24 Edison", "2 Dell").
fn legend(s: &WebScenario) -> String {
    let p = match s.platform {
        Platform::Edison => "Edison",
        Platform::Dell => "Dell",
    };
    format!("{} {p}", s.web_servers)
}

/// The seed-derivation stream id of one (scenario, mix) sweep: stable,
/// human-readable, and distinct across every Table 6 row × workload mix.
fn stream_id(s: &WebScenario, mix: WorkloadMix) -> String {
    format!(
        "web:{}:img{:.0}%:hit{:.0}%",
        legend(s),
        100.0 * mix.image_fraction,
        100.0 * mix.cache_hit_ratio
    )
}

/// All scale configurations of Table 6 that exist.
fn all_scenarios() -> Vec<WebScenario> {
    let mut v = Vec::new();
    for platform in [Platform::Edison, Platform::Dell] {
        for scale in [ClusterScale::Full, ClusterScale::Half, ClusterScale::Quarter, ClusterScale::Eighth] {
            if let Some(s) = WebScenario::table6(platform, scale) {
                v.push(s);
            }
        }
    }
    v
}

fn opts(budget: &RunBudget, seed: u64) -> RunOpts {
    RunOpts { seed, warmup_s: budget.web_warmup_s, measure_s: budget.web_measure_s, ..RunOpts::default() }
}

/// Run a full concurrency sweep for one scenario/mix over the executor.
/// Point `i` runs with seed `derive_seed(ROOT_SEED, stream_id, i)`.
pub fn sweep(
    scenario: &WebScenario,
    mix: WorkloadMix,
    budget: &RunBudget,
    exec: &Executor,
    tel: &mut Telemetry,
) -> Result<Vec<HttperfResult>, RunError> {
    let concs = concurrency_sweep();
    let stream = stream_id(scenario, mix);
    exec.sweep(
        &stream,
        &concs,
        tel,
        |_, &c| format!("conc={c}"),
        |i, &c| httperf::run_point(scenario, mix, c, opts(budget, derive_seed_at(ROOT_SEED, &stream, i))),
    )
}

/// A point is "shown" in the paper's figures while server-side errors stay
/// negligible; beyond that the paper excludes it.
fn shown(r: &HttperfResult) -> bool {
    r.error_rate < 0.02
}

type SeriesBundle = (Vec<Series>, Vec<Series>, Vec<(String, Vec<HttperfResult>)>);

fn throughput_series(
    scenarios: &[WebScenario],
    mix: WorkloadMix,
    budget: &RunBudget,
    exec: &Executor,
    tel: &mut Telemetry,
) -> Result<SeriesBundle, RunError> {
    let mut tput = Vec::new();
    let mut delay = Vec::new();
    let mut raw = Vec::new();
    for sc in scenarios {
        let rs = sweep(sc, mix, budget, exec, tel)?;
        let label = legend(sc);
        tput.push(Series {
            label: label.clone(),
            points: rs.iter().filter(|r| shown(r)).map(|r| (r.concurrency, r.requests_per_sec)).collect(),
        });
        delay.push(Series {
            label: label.clone(),
            points: rs.iter().filter(|r| shown(r)).map(|r| (r.concurrency, r.mean_delay_ms)).collect(),
        });
        raw.push((label, rs));
    }
    Ok((tput, delay, raw))
}

fn power_summary(raw: &[(String, Vec<HttperfResult>)]) -> String {
    let mut out = String::new();
    for (label, rs) in raw {
        let max_p = rs.iter().map(|r| r.mean_power_w).fold(0.0, f64::max);
        let min_p = rs.iter().map(|r| r.mean_power_w).fold(f64::INFINITY, f64::min);
        let peak = rs.iter().filter(|r| shown(r)).map(|r| r.requests_per_sec).fold(0.0, f64::max);
        out.push_str(&format!(
            "{label}: power {min_p:.1}-{max_p:.1} W, peak {peak:.0} req/s\n"
        ));
    }
    out
}

/// The raw sweep of `label`, or a typed data error naming what's missing.
fn series_for<'a>(
    raw: &'a [(String, Vec<HttperfResult>)],
    label: &str,
) -> Result<&'a Vec<HttperfResult>, RunError> {
    raw.iter()
        .find(|(l, _)| l == label)
        .map(|(_, rs)| rs)
        .ok_or_else(|| SimError::Data(format!("sweep series '{label}' missing")).into())
}

/// The peak-throughput shown point of a sweep, or a typed data error if
/// every point was excluded.
fn peak_point(label: &str, rs: &[HttperfResult]) -> Result<HttperfResult, RunError> {
    rs.iter()
        .filter(|r| shown(r))
        .max_by(|a, b| a.requests_per_sec.total_cmp(&b.requests_per_sec))
        .cloned()
        .ok_or_else(|| SimError::Data(format!("sweep '{label}' has no shown points")).into())
}

/// Figures 4 and 7: lightest load (93 % hits, 0 % images), all scales,
/// with cluster power.
pub fn fig04_07(budget: &RunBudget, exec: &Executor, tel: &mut Telemetry) -> Result<Report, RunError> {
    let (tput, delay, raw) = throughput_series(&all_scenarios(), WorkloadMix::lightest(), budget, exec, tel)?;
    trace_eighth(tel, WorkloadMix::lightest(), 64.0, budget);
    let mut body = String::from("Figure 4 (throughput, req/s) + power lines:\n");
    body.push_str(&series_table("conc", &tput));
    body.push_str(&chart(&tput, 64, 16, Scale::Log, Scale::Linear));
    body.push_str(&power_summary(&raw));
    body.push_str("\nFigure 7 (mean response delay, ms):\n");
    body.push_str(&series_table("conc", &delay));
    body.push_str(&chart(&delay, 64, 16, Scale::Log, Scale::Log));

    // headline comparisons: peak throughput of the full clusters + the
    // work-done-per-joule ratio at peak
    let full_e = series_for(&raw, "24 Edison")?;
    let full_d = series_for(&raw, "2 Dell")?;
    let pe = peak_point("24 Edison", full_e)?;
    let pd = peak_point("2 Dell", full_d)?;
    let efficiency = pe.requests_per_joule / pd.requests_per_joule;
    // low-load delay comparison: Edison ≈ 5× Dell
    let low_e = &full_e[1];
    let low_d = &full_d[1];
    Ok(Report {
        id: "fig04_07".into(),
        title: "Web throughput & delay, no image query (Figures 4 and 7)".into(),
        body,
        comparisons: vec![
            Comparison::new("Edison peak throughput (req/s)", paper::WEB_PEAK_RPS, pe.requests_per_sec),
            Comparison::new("Dell peak throughput (req/s)", paper::WEB_PEAK_RPS, pd.requests_per_sec),
            Comparison::new("Edison cluster power at peak (W)", 57.0, pe.mean_power_w),
            Comparison::new("Dell cluster power at peak (W)", 190.0, pd.mean_power_w),
            Comparison::new("work-done-per-joule gain", paper::WEB_EFFICIENCY_GAIN, efficiency),
            Comparison::new("low-load delay ratio (Edison/Dell)", 5.0, low_e.mean_delay_ms / low_d.mean_delay_ms),
        ],
    })
}

/// Figures 5 and 8: lower hit ratios and moderate image mixes, full
/// clusters only.
pub fn fig05_08(budget: &RunBudget, exec: &Executor, tel: &mut Telemetry) -> Result<Report, RunError> {
    let full_e = WebScenario::table6_or_err(Platform::Edison, ClusterScale::Full)?;
    trace_representative(tel, &full_e, WorkloadMix::hit(0.77), 64.0, budget);
    let full_d = WebScenario::table6_or_err(Platform::Dell, ClusterScale::Full)?;
    let mixes = [
        ("cache=77%", WorkloadMix::hit(0.77)),
        ("cache=60%", WorkloadMix::hit(0.60)),
        ("img=6%", WorkloadMix::img6()),
        ("img=10%", WorkloadMix::img10()),
    ];
    let mut tput = Vec::new();
    let mut delay = Vec::new();
    for (name, mix) in mixes {
        for (sc, plat) in [(&full_e, "Edison"), (&full_d, "Dell")] {
            let rs = sweep(sc, mix, budget, exec, tel)?;
            tput.push(Series {
                label: format!("{plat} {name}"),
                points: rs.iter().filter(|r| shown(r)).map(|r| (r.concurrency, r.requests_per_sec)).collect(),
            });
            delay.push(Series {
                label: format!("{plat} {name}"),
                points: rs.iter().filter(|r| shown(r)).map(|r| (r.concurrency, r.mean_delay_ms)).collect(),
            });
        }
    }
    let mut body = String::from("Figure 5 (throughput, req/s):\n");
    body.push_str(&series_table("conc", &tput));
    body.push_str("\nFigure 8 (mean response delay, ms):\n");
    body.push_str(&series_table("conc", &delay));
    // the paper's observation: peak throughput changes little across mixes
    let peak = |s: &Series| s.points.iter().map(|p| p.1).fold(0.0, f64::max);
    let e77 = peak(&tput[0]);
    let e10 = peak(&tput[6]);
    Ok(Report {
        id: "fig05_08".into(),
        title: "Web throughput & delay, higher image %, lower hit ratio (Figures 5 and 8)".into(),
        body,
        comparisons: vec![Comparison::new(
            "Edison peak ratio img10/cache77 (≈1: small mix penalty)",
            0.95,
            e10 / e77,
        )],
    })
}

/// Figures 6 and 9: the heaviest fair mix (20 % images), all scales.
pub fn fig06_09(budget: &RunBudget, exec: &Executor, tel: &mut Telemetry) -> Result<Report, RunError> {
    trace_eighth(tel, WorkloadMix::img20(), 64.0, budget);
    let (tput, delay, raw) = throughput_series(&all_scenarios(), WorkloadMix::img20(), budget, exec, tel)?;
    let mut body = String::from("Figure 6 (throughput, req/s, 20% image) + power lines:\n");
    body.push_str(&series_table("conc", &tput));
    body.push_str(&chart(&tput, 64, 16, Scale::Log, Scale::Linear));
    body.push_str(&power_summary(&raw));
    body.push_str("\nFigure 9 (mean response delay, ms):\n");
    body.push_str(&series_table("conc", &delay));
    body.push_str(&chart(&delay, 64, 16, Scale::Log, Scale::Log));
    let peak = |label: &str| {
        raw.iter()
            .find(|(l, _)| l == label)
            .map(|(_, rs)| {
                rs.iter().filter(|r| shown(r)).map(|r| r.requests_per_sec).fold(0.0, f64::max)
            })
            .unwrap_or(0.0)
    };
    let pe = peak("24 Edison");
    let pd = peak("2 Dell");
    // §5.1.2: throughput at 20 % images ≈ 85 % of the lightest workload
    Ok(Report {
        id: "fig06_09".into(),
        title: "Web throughput & delay, 20% image query (Figures 6 and 9)".into(),
        body,
        comparisons: vec![
            Comparison::new("Edison peak (req/s, ≈85% of light)", 0.85 * paper::WEB_PEAK_RPS, pe),
            Comparison::new("Dell peak (req/s)", 0.85 * paper::WEB_PEAK_RPS, pd),
        ],
    })
}

/// Figures 10 and 11: python-client delay distributions at ~6000 req/s,
/// 20 % images.
pub fn fig10_11(budget: &RunBudget, _exec: &Executor, tel: &mut Telemetry) -> Result<Report, RunError> {
    trace_eighth(tel, WorkloadMix::img20(), 64.0, budget);
    let full_e = WebScenario::table6_or_err(Platform::Edison, ClusterScale::Full)?;
    let full_d = WebScenario::table6_or_err(Platform::Dell, ClusterScale::Full)?;
    let rate = 6000.0;
    let e = pyclient::run_distribution(&full_e, WorkloadMix::img20(), rate, 7, budget.web_measure_s);
    let d = pyclient::run_distribution(&full_d, WorkloadMix::img20(), rate, 7, budget.web_measure_s);
    let fmt_hist = |name: &str, dist: &pyclient::DelayDistribution| {
        let mut s = format!("{name}: {} samples, {} SYN drops, {} client errors\n", dist.samples(), dist.syn_drops, dist.client_errors);
        let buckets: Vec<(f64, u64)> = (0..16)
            .map(|i| {
                let lo = i as f64 * 0.5;
                let mass: u64 = (0..5).map(|j| dist.hist.count_at(lo + j as f64 * 0.1 + 0.05)).sum();
                (lo + 0.25, mass)
            })
            .collect();
        s.push_str(&bar_chart(&buckets, 50));
        s
    };
    let mut body = String::new();
    body.push_str(&fmt_hist("Figure 10, Edison", &e));
    body.push_str(&fmt_hist("Figure 11, Dell", &d));
    // spike structure on Dell: mass near 1 s and 3 s from SYN retries
    let spike = |dist: &pyclient::DelayDistribution, t: f64| -> f64 {
        (0..4).map(|j| dist.hist.count_at(t + j as f64 * 0.1)).sum::<u64>() as f64
    };
    let d1 = spike(&d, 1.0);
    let d3 = spike(&d, 3.0);
    let e1 = spike(&e, 1.0);
    body.push_str(&format!("Dell retry spikes: ~1s mass {d1}, ~3s mass {d3}; Edison ~1s mass {e1}\n"));
    Ok(Report {
        id: "fig10_11".into(),
        title: "Response delay distributions (Figures 10 and 11)".into(),
        body,
        comparisons: vec![
            Comparison::new("Dell 1s-spike present (mass>0 → 1)", 1.0, f64::from(d1 > 0.0)),
            Comparison::new("Dell 3s-spike present", 1.0, f64::from(d3 > 0.0)),
            Comparison::new("Edison spike-free at 1s (mass≈0 → 1)", 1.0, f64::from(e1 <= d1 / 4.0)),
        ],
    })
}

/// Table 7: delay decomposition at fixed request rates (20 % images, 93 %
/// hits).
pub fn table7(budget: &RunBudget, exec: &Executor, tel: &mut Telemetry) -> Result<Report, RunError> {
    let full_e = WebScenario::table6_or_err(Platform::Edison, ClusterScale::Full)?;
    let full_d = WebScenario::table6_or_err(Platform::Dell, ClusterScale::Full)?;
    trace_representative(tel, &full_e, WorkloadMix::img20(), 480.0 / httperf::CALLS_PER_CONN, budget);
    let rates = [480.0, 960.0, 1920.0, 3840.0, 7680.0];
    // all ten runs are independent — a 5-point sweep of (Edison, Dell)
    // pairs; each half of a pair draws from its own seed stream
    let cells = exec.sweep(
        "web:table7",
        &rates,
        tel,
        |_, &rps| format!("rate={rps:.0}"),
        |i, &rps| {
            let conc = rps / httperf::CALLS_PER_CONN;
            let e = httperf::run_point(
                &full_e,
                WorkloadMix::img20(),
                conc,
                opts(budget, derive_seed_at(ROOT_SEED, "web:table7:edison", i)),
            );
            let d = httperf::run_point(
                &full_d,
                WorkloadMix::img20(),
                conc,
                opts(budget, derive_seed_at(ROOT_SEED, "web:table7:dell", i)),
            );
            (e, d)
        },
    )?;
    let mut rows = Vec::new();
    let mut comparisons = Vec::new();
    for (i, ((e, d), &rps)) in cells.iter().zip(&rates).enumerate() {
        rows.push(vec![
            format!("{rps:.0}"),
            format!("({:.2}, {:.2})", e.db_delay_ms, d.db_delay_ms),
            format!("({:.2}, {:.2})", e.cache_delay_ms, d.cache_delay_ms),
            format!("({:.2}, {:.2})", e.mean_delay_ms, d.mean_delay_ms),
        ]);
        let p = paper::TABLE7[i];
        if i == 0 || i == rates.len() - 1 {
            comparisons.push(Comparison::new(format!("Edison db delay @{rps} (ms)"), p.1, e.db_delay_ms));
            comparisons.push(Comparison::new(format!("Dell db delay @{rps} (ms)"), p.2, d.db_delay_ms));
            comparisons.push(Comparison::new(format!("Edison cache delay @{rps} (ms)"), p.3, e.cache_delay_ms));
            comparisons.push(Comparison::new(format!("Dell cache delay @{rps} (ms)"), p.4, d.cache_delay_ms));
        }
    }
    Ok(Report {
        id: "table7".into(),
        title: "Time delay decomposition (Table 7), (Edison, Dell) ms".into(),
        body: table(&["# Request/s", "Database delay", "Cache delay", "Total"], &rows),
        comparisons,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_legends() {
        let s = WebScenario::table6(Platform::Edison, ClusterScale::Full).unwrap();
        assert_eq!(legend(&s), "24 Edison");
        let s = WebScenario::table6(Platform::Dell, ClusterScale::Half).unwrap();
        assert_eq!(legend(&s), "1 Dell");
    }

    #[test]
    fn stream_ids_are_distinct_across_rows_and_mixes() {
        let e8 = WebScenario::table6(Platform::Edison, ClusterScale::Eighth).unwrap();
        let d2 = WebScenario::table6(Platform::Dell, ClusterScale::Full).unwrap();
        let ids = [
            stream_id(&e8, WorkloadMix::lightest()),
            stream_id(&e8, WorkloadMix::img20()),
            stream_id(&e8, WorkloadMix::hit(0.77)),
            stream_id(&d2, WorkloadMix::lightest()),
        ];
        for (i, a) in ids.iter().enumerate() {
            for b in &ids[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn all_scenarios_count() {
        // 4 Edison scales + 2 Dell scales
        assert_eq!(all_scenarios().len(), 6);
    }

    #[test]
    fn tiny_sweep_produces_monotone_low_end() {
        // minimal budget: eighth-scale Edison only, truncated sweep
        let sc = WebScenario::table6(Platform::Edison, ClusterScale::Eighth).unwrap();
        let budget = RunBudget::quick();
        let rs = sweep(&sc, WorkloadMix::lightest(), &budget, &Executor::serial(), &mut Telemetry::off())
            .expect("healthy sweep");
        assert_eq!(rs.len(), 9);
        // below saturation, throughput tracks concurrency
        assert!(rs[1].requests_per_sec > rs[0].requests_per_sec);
        assert!(rs[2].requests_per_sec > rs[1].requests_per_sec);
    }
}
