//! Golden determinism test for the telemetry layer: two identically-seeded
//! traced runs must export byte-identical artefacts. This is the property
//! that makes traces diffable across commits — any map-order or float-format
//! nondeterminism in the registry, tracer or exporters breaks it.

use edison_mapreduce::engine::{run_job_traced, ClusterSetup};
use edison_mapreduce::jobs;
use edison_simtel::export::{validate_json, validate_prometheus};
use edison_simtel::Telemetry;
use edison_web::httperf::{self, RunOpts};
use edison_web::{ClusterScale, Platform, WebScenario, WorkloadMix};

/// One traced web point + one traced MapReduce job, merged — the same pair
/// the `smoke` experiment runs.
fn traced_pair() -> Telemetry {
    let mut tel = Telemetry::on();

    let scenario = WebScenario::table6(Platform::Edison, ClusterScale::Eighth).unwrap();
    let opts = RunOpts { seed: 20160509, warmup_s: 2, measure_s: 6, ..RunOpts::default() };
    let (_, wtel) =
        httperf::run_point_traced(&scenario, WorkloadMix::lightest(), 64.0, opts, Telemetry::on());
    tel.merge(wtel);

    let setup = ClusterSetup::edison(4);
    let profile = jobs::logcount2(setup.tune).with_map_tasks(8);
    let (_, jtel) = run_job_traced(&profile, &setup, Telemetry::on());
    tel.merge(jtel);

    tel
}

#[test]
fn same_seed_traces_are_byte_identical() {
    let a = traced_pair();
    let b = traced_pair();

    let trace_a = a.chrome_trace_json();
    let trace_b = b.chrome_trace_json();
    assert_eq!(trace_a, trace_b, "chrome trace must be byte-identical across same-seed runs");

    let prom_a = a.prometheus_text();
    let prom_b = b.prometheus_text();
    assert_eq!(prom_a, prom_b, "prometheus text must be byte-identical across same-seed runs");

    let csv_a = edison_core::export::telemetry_csv(&a);
    let csv_b = edison_core::export::telemetry_csv(&b);
    assert_eq!(csv_a, csv_b, "telemetry csv must be byte-identical across same-seed runs");
}

#[test]
fn exports_are_well_formed_and_complete() {
    let tel = traced_pair();

    let trace = tel.chrome_trace_json();
    validate_json(&trace).expect("chrome trace is valid JSON");
    for span in ["http_request", "map_task", "reduce_task", "shuffle_fetch"] {
        assert!(trace.contains(span), "trace has {span} spans");
    }

    let prom = tel.prometheus_text();
    validate_prometheus(&prom).expect("prometheus text is valid exposition format");
    for metric in [
        "web_requests_total",
        "web_request_delay_seconds",
        "mr_maps_completed_total",
        "mr_reduces_completed_total",
        "node_power_watts",
        "sim_events_total",
    ] {
        assert!(prom.contains(metric), "prometheus text has {metric}");
    }
}
