//! End-to-end test of the `repro` binary's telemetry surface: run the
//! smoke experiment with `--trace`/`--metrics`/`--telemetry-csv` and check
//! the artefacts are non-empty and well-formed.

use edison_simtel::export::{validate_json, validate_prometheus};
use std::process::Command;

#[test]
fn repro_smoke_writes_telemetry_artifacts() {
    let dir = std::env::temp_dir().join(format!("repro-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let trace = dir.join("trace.json");
    let metrics = dir.join("metrics.prom");
    let csv = dir.join("telemetry.csv");

    let status = Command::new(env!("CARGO_BIN_EXE_repro"))
        .arg("smoke")
        .arg("--trace")
        .arg(&trace)
        .arg("--metrics")
        .arg(&metrics)
        .arg("--telemetry-csv")
        .arg(&csv)
        .status()
        .expect("run repro");
    assert!(status.success(), "repro smoke exited non-zero");

    let trace_text = std::fs::read_to_string(&trace).expect("trace written");
    validate_json(&trace_text).expect("trace is valid JSON");
    assert!(trace_text.contains("http_request"), "trace has web request spans");
    assert!(trace_text.contains("map_task"), "trace has mapreduce spans");

    let prom_text = std::fs::read_to_string(&metrics).expect("metrics written");
    validate_prometheus(&prom_text).expect("metrics are valid exposition text");
    assert!(prom_text.contains("web_requests_total"));
    assert!(prom_text.contains("mr_maps_completed_total"));

    let csv_text = std::fs::read_to_string(&csv).expect("csv written");
    assert!(csv_text.starts_with("kind,name,labels,x,value"), "csv has the expected header");
    assert!(csv_text.lines().count() > 10, "csv has rows");

    let _ = std::fs::remove_dir_all(&dir);
}
