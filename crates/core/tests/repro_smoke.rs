//! End-to-end tests of the `repro` binary: the telemetry surface (run the
//! smoke experiment with `--trace`/`--metrics`/`--telemetry-csv` and check
//! the artefacts are non-empty and well-formed) and the simrun error
//! surface (a panicking sweep point must produce a readable failure and
//! exit code 3, not an abort).

use edison_simtel::export::{validate_json, validate_prometheus};
use std::process::Command;

#[test]
fn repro_smoke_writes_telemetry_artifacts() {
    let dir = std::env::temp_dir().join(format!("repro-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let trace = dir.join("trace.json");
    let metrics = dir.join("metrics.prom");
    let csv = dir.join("telemetry.csv");

    let status = Command::new(env!("CARGO_BIN_EXE_repro"))
        .arg("smoke")
        .arg("--trace")
        .arg(&trace)
        .arg("--metrics")
        .arg(&metrics)
        .arg("--telemetry-csv")
        .arg(&csv)
        .status()
        .expect("run repro");
    assert!(status.success(), "repro smoke exited non-zero");

    let trace_text = std::fs::read_to_string(&trace).expect("trace written");
    validate_json(&trace_text).expect("trace is valid JSON");
    assert!(trace_text.contains("http_request"), "trace has web request spans");
    assert!(trace_text.contains("map_task"), "trace has mapreduce spans");

    let prom_text = std::fs::read_to_string(&metrics).expect("metrics written");
    validate_prometheus(&prom_text).expect("metrics are valid exposition text");
    assert!(prom_text.contains("web_requests_total"));
    assert!(prom_text.contains("mr_maps_completed_total"));

    let csv_text = std::fs::read_to_string(&csv).expect("csv written");
    assert!(csv_text.starts_with("kind,name,labels,x,value"), "csv has the expected header");
    assert!(csv_text.lines().count() > 10, "csv has rows");

    let _ = std::fs::remove_dir_all(&dir);
}

/// `repro fault_demo`: the deliberately-panicking sweep point is isolated
/// (its siblings run to completion), reported as a readable
/// `RunError::PointFailed`, and mapped to exit code 3 — the process does
/// not abort with a raw panic.
#[test]
fn repro_fault_demo_exits_with_point_failed_code() {
    let output = Command::new(env!("CARGO_BIN_EXE_repro"))
        .arg("fault_demo")
        .arg("--jobs")
        .arg("2")
        .output()
        .expect("run repro");
    assert_eq!(output.status.code(), Some(3), "PointFailed must map to exit code 3");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("fault_demo/point5"), "failure names the point:\n{stderr}");
    assert!(stderr.contains("deliberate fault-injection panic"), "failure carries the cause:\n{stderr}");
}

/// A missing or malformed `--fault-plan` file is a CLI error (exit 2) with
/// a readable message — never a panic, never exit 3/4/5.
#[test]
fn repro_bad_fault_plan_exits_2() {
    let output = Command::new(env!("CARGO_BIN_EXE_repro"))
        .arg("fault_sweep")
        .arg("--fault-plan")
        .arg("/no/such/plan.txt")
        .output()
        .expect("run repro");
    assert_eq!(output.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("read fault plan"), "{stderr}");

    let dir = std::env::temp_dir().join(format!("repro-badplan-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let bad = dir.join("bad.txt");
    std::fs::write(&bad, "fault ten 0 crash\n").expect("write bad plan");
    let output = Command::new(env!("CARGO_BIN_EXE_repro"))
        .arg("fault_sweep")
        .arg("--fault-plan")
        .arg(&bad)
        .output()
        .expect("run repro");
    assert_eq!(output.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("line 1"), "parse errors carry line numbers:\n{stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Unknown experiment ids stay on the CLI-error exit code (2), distinct
/// from simulation failures.
#[test]
fn repro_unknown_experiment_exits_2() {
    let output = Command::new(env!("CARGO_BIN_EXE_repro"))
        .arg("no_such_experiment")
        .output()
        .expect("run repro");
    assert_eq!(output.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("unknown experiment"), "{stderr}");
}

/// `--all` excludes the deliberate-failure demo, so a full quick run's
/// experiment list never contains it.
#[test]
fn repro_list_marks_fault_demo_as_excluded() {
    let output = Command::new(env!("CARGO_BIN_EXE_repro"))
        .arg("--list")
        .output()
        .expect("run repro");
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("fault_demo"), "{stdout}");
    assert!(stdout.contains("not part of --all"), "{stdout}");
}
