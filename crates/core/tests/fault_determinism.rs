//! Fault-layer determinism, end to end (ISSUE 5 satellite):
//!
//! 1. a zero-width fault (crash and restart at the same `SimTime`) is
//!    observationally a no-op — byte-identical telemetry export;
//! 2. the same seed + the same `FaultPlan` produce byte-identical reports
//!    and telemetry exports at `--jobs 1` vs `--jobs 8`;
//! 3. a fault injected after the run's end changes nothing;
//! 4. the acceptance shape: a single web-node crash recovers — post-restart
//!    throughput returns to within 5 % of the healthy steady state.

use edison_core::experiments::faults::fault_sweep;
use edison_core::export::telemetry_csv;
use edison_core::registry::RunBudget;
use edison_simcore::time::{SimDuration, SimTime};
use edison_simfault::FaultPlan;
use edison_simrun::Executor;
use edison_simtel::Telemetry;
use edison_web::stack::{run, run_traced, GenMode, StackConfig};
use edison_web::{ClusterScale, Platform, WebScenario, WorkloadMix};
use proptest::prelude::*;

/// A CI-sized web point: eighth-scale Edison (3 web + 2 cache), light load.
fn small_cfg(seed: u64) -> StackConfig {
    let scenario = WebScenario::table6(Platform::Edison, ClusterScale::Eighth).unwrap();
    let mut cfg = StackConfig::new(
        scenario,
        WorkloadMix::lightest(),
        GenMode::Httperf { connections_per_sec: 32.0, calls_per_conn: 6.6 },
        seed,
    );
    cfg.warmup = SimDuration::from_secs(1);
    cfg.measure = SimDuration::from_secs(5);
    cfg.retry_budget = 2;
    cfg
}

/// Prometheus text of one traced run — the byte-comparison surface.
fn export_of(cfg: StackConfig) -> String {
    let mut world = run_traced(cfg, Telemetry::on());
    world.take_telemetry().prometheus_text()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// (1) Crash + restart at the same instant cancel in
    /// `FaultPlan::normalized()`: no event is scheduled, no counter moves,
    /// and the telemetry export is byte-identical to the fault-free run.
    #[test]
    fn zero_width_fault_is_a_byte_identical_noop(
        seed in 0u64..500,
        node in 0usize..5,
        at_s in 1.0f64..6.0,
    ) {
        let at = SimTime::from_secs_f64(at_s);
        let mut faulted = small_cfg(seed);
        faulted.fault_plan = FaultPlan::new().crash(node, at).restart(node, at);
        prop_assert_eq!(export_of(faulted), export_of(small_cfg(seed)));
    }

    /// (3) A fault scheduled after the measurement window closes is never
    /// processed: the export stays byte-identical.
    #[test]
    fn post_end_fault_changes_nothing(
        seed in 0u64..500,
        node in 0usize..5,
        after_s in 1.0f64..100.0,
    ) {
        // warmup 1 s + measure 5 s: anything past 6 s is after the stop
        let at = SimTime::from_secs_f64(6.0 + after_s);
        let mut faulted = small_cfg(seed);
        faulted.fault_plan = FaultPlan::new().crash(node, at);
        prop_assert_eq!(export_of(faulted), export_of(small_cfg(seed)));
    }
}

/// (2) `fault_sweep` at `--jobs 1` vs `--jobs 8`: same seeds, same plans,
/// byte-identical report and telemetry exports. The worker-pool width is a
/// scheduling detail, never an input to the simulation.
#[test]
fn fault_sweep_is_bit_identical_across_jobs_widths() {
    let run_at = |jobs: usize| {
        let mut tel = Telemetry::on();
        let report = fault_sweep(&RunBudget::quick(), &Executor::new(jobs), &mut tel)
            .expect("fault_sweep runs");
        (format!("{report}"), tel.prometheus_text(), telemetry_csv(&tel))
    };
    let (rep1, prom1, csv1) = run_at(1);
    let (rep8, prom8, csv8) = run_at(8);
    assert_eq!(rep1, rep8, "report text must not depend on --jobs");
    assert_eq!(prom1, prom8, "prometheus export must not depend on --jobs");
    assert_eq!(csv1, csv8, "csv export must not depend on --jobs");
    // and the run actually exercised the fault path
    assert!(prom1.contains("fault_injected_total"), "{prom1}");
    assert!(prom1.contains("failover_total"), "faulted trace must record failovers");
    assert!(prom1.contains("fault_recovery_seconds"), "recovery histogram must be exported");
}

/// (4) Acceptance: one crashed web server, with failover + retries, costs
/// only the outage window — after the restart the per-second throughput
/// returns to within 5 % of the healthy run's steady state.
#[test]
fn web_crash_recovers_to_steady_state_throughput() {
    let mut faulted = small_cfg(11);
    faulted.measure = SimDuration::from_secs(24);
    faulted.fault_plan =
        FaultPlan::new().crash_restart(0, SimTime::from_secs(5), SimDuration::from_secs(4));
    let f = run(faulted);
    let mut healthy = small_cfg(11);
    healthy.measure = SimDuration::from_secs(24);
    let h = run(healthy);
    assert!(f.metrics.failovers >= 1, "LB must fail the node over");
    assert_eq!(f.metrics.recovery_s.len(), 1, "one completed recovery");
    // steady-state window: well past crash (5 s) + outage (4 s) + RISE
    let tail_mean = |ts: &edison_simcore::stats::TimeSeries| {
        let pts: Vec<f64> = ts
            .points()
            .iter()
            .filter(|(t, _)| t.as_secs_f64() >= 17.0)
            .map(|&(_, v)| v)
            .collect();
        pts.iter().sum::<f64>() / pts.len() as f64
    };
    let f_tail = tail_mean(&f.metrics.throughput_ts);
    let h_tail = tail_mean(&h.metrics.throughput_ts);
    assert!(
        (f_tail - h_tail).abs() / h_tail < 0.05,
        "post-recovery throughput {f_tail:.1} rps vs healthy {h_tail:.1} rps"
    );
}
