//! Tier-1 gate for the `explore` experiment (`cargo explore-gate`).
//!
//! Pins the two load-bearing claims of the simexplore tentpole:
//!
//! 1. **The cliff is found.** The hand-written base plan (one polite
//!    crash/restart of node 0) keeps availability at ~100% — a
//!    `fault_sweep`-style schedule never sees trouble. Within the
//!    *default* quick budget the explorer finds a schedule that crashes
//!    the healthy sibling inside node 0's observed RISE window, drops
//!    availability past the cliff threshold, and delta-debugs it to a
//!    reproducer of at most 3 faults.
//! 2. **Exploration is deterministic in `--jobs`.** Same seed + budget
//!    must produce a byte-identical worst-case schedule, spec, and
//!    metrics whether candidates run on 1 worker or 8.

use edison_core::experiments::explore::run_explore;
use edison_core::registry::RunBudget;
use edison_simexplore::crashes_inside;
use edison_simfault::{FaultKind, FaultPlan};
use edison_simrun::Executor;
use edison_simtel::Telemetry;

#[test]
fn default_budget_finds_the_recovery_window_cliff_and_shrinks_it() {
    let budget = RunBudget::quick();
    let exec = Executor::new(1);
    let mut tel = Telemetry::off();
    let (outcome, windows, halfopen) =
        run_explore(&budget, &exec, &mut tel).expect("exploration should complete");

    // the observation run must have reported where recovery actually lay
    assert!(!windows.is_empty(), "base run observed no recovery window");
    // guards are off by default, so no breaker half-open windows exist
    assert!(halfopen.is_empty(), "unguarded run reported breaker windows");

    // the base plan itself is polite: no fault of its own lands inside
    // the window it creates (that is exactly what hand plans miss)
    assert!(
        !windows.iter().any(|w| crashes_inside(&outcome.base_plan, w)),
        "fixture broken: the base plan already hits the window"
    );

    // the worst schedule is strictly worse than base, found by the
    // window-probe phase, and crashes inside an observed window
    assert!(
        outcome.worst.availability < outcome.base.availability,
        "no schedule worse than base found within the default budget"
    );
    assert_eq!(outcome.worst_phase, "window");
    assert!(
        windows.iter().any(|w| crashes_inside(&outcome.worst_plan, w)),
        "worst schedule does not crash inside an observed recovery window"
    );

    // the cliff fired and shrank to a small reproducer
    let cliff = outcome.cliff.as_ref().expect("availability cliff not detected");
    assert!(cliff.reproducer.len() <= 3, "reproducer has {} faults", cliff.reproducer.len());
    assert!(
        windows.iter().any(|w| crashes_inside(&cliff.reproducer, w)),
        "shrunk reproducer lost the in-window crash"
    );
    // ... and the reproducer still names at least one crash, round-trips
    // through the spec grammar, and reproduces via --fault-plan
    assert!(cliff.reproducer.faults().iter().any(|f| f.kind == FaultKind::NodeCrash));
    let reparsed = FaultPlan::parse(&cliff.spec).expect("reproducer spec must parse");
    assert_eq!(reparsed.normalized(), cliff.reproducer.normalized());
}

#[test]
fn guarded_exploration_probes_breaker_halfopen_windows() {
    // with --guard the hotter observation run must trip the crashed
    // node's breaker, report its half-open window, and keep the base
    // schedule findable-worse — the halfopen probe phase needs real
    // windows to aim at
    let mut budget = RunBudget::quick();
    budget.guard = true;
    let exec = Executor::new(4);
    let mut tel = Telemetry::off();
    let (outcome, windows, halfopen) =
        run_explore(&budget, &exec, &mut tel).expect("guarded exploration should complete");
    assert!(!windows.is_empty(), "guarded base run observed no recovery window");
    assert!(!halfopen.is_empty(), "guarded base run tripped no breaker");
    // the breaker opened on the crashed node and half-opened before the
    // end of the run — a real, probeable window
    for w in &halfopen {
        assert_eq!(w.node, 0, "breaker window on an uncrashed node: {w:?}");
        assert!(w.start < w.end, "degenerate half-open window: {w:?}");
    }
    assert!(
        outcome.worst.availability <= outcome.base.availability,
        "worst schedule scored better than base"
    );
}

#[test]
fn exploration_is_byte_identical_across_jobs_widths() {
    let budget = RunBudget::quick();
    let mut tel1 = Telemetry::off();
    let mut tel8 = Telemetry::off();
    let (o1, w1, h1) = run_explore(&budget, &Executor::new(1), &mut tel1).expect("jobs=1 run");
    let (o8, w8, h8) = run_explore(&budget, &Executor::new(8), &mut tel8).expect("jobs=8 run");
    assert_eq!(w1, w8, "observed recovery windows differ across jobs widths");
    assert_eq!(h1, h8, "observed half-open windows differ across jobs widths");
    assert_eq!(o1.worst_spec, o8.worst_spec, "worst-case spec differs across jobs widths");
    assert_eq!(o1, o8, "exploration outcome differs across jobs widths");
}
