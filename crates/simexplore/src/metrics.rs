//! Metric vocabulary recorded by [`explore`](crate::explore).
//!
//! Names are `&'static str` constants so worlds and tests reference one
//! spelling, and `register_help` seeds the export HELP lines.

use edison_simtel::Telemetry;

/// Counter: candidate schedules evaluated, by `phase`
/// (`base`/`window`/`reorder`/`jitter`/`random`/`shrink`) and `outcome`
/// (`ok`/`error`).
pub const SCHEDULES_TOTAL: &str = "explore_schedules_total";

/// Gauge: availability drop of the worst schedule below the base
/// schedule (0 when no candidate did worse than the base).
pub const CLIFF_DEPTH: &str = "explore_cliff_depth";

/// Gauge: availability of the worst schedule found.
pub const WORST_AVAILABILITY: &str = "explore_worst_availability";

/// Gauge: worst single recovery time (seconds) under the worst schedule.
pub const WORST_RECOVERY_SECONDS: &str = "explore_worst_recovery_seconds";

/// Register HELP text for the explore metric vocabulary.
pub fn register_help(tel: &mut Telemetry) {
    tel.help(SCHEDULES_TOTAL, "Candidate fault schedules evaluated, by phase and outcome");
    tel.help(CLIFF_DEPTH, "Availability drop of the worst schedule below the base schedule");
    tel.help(WORST_AVAILABILITY, "Availability of the worst schedule found");
    tel.help(WORST_RECOVERY_SECONDS, "Worst single recovery time under the worst schedule (s)");
}
