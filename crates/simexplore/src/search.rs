//! Worst-case search over the candidate schedules and cliff shrinking.

use std::cmp::Ordering;

use edison_simfault::FaultPlan;
use edison_simrun::{Executor, RunError, SimError};
use edison_simtel::{labels, Telemetry};

use crate::metrics;
use crate::space::{candidates, PerturbSpace};

/// How much searching to do and how to derive the randomized tail.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExploreBudget {
    /// Total candidate schedules to evaluate, including the base. The
    /// exhaustive phases fill this first; seed-derived randomized
    /// schedules top it up.
    pub schedules: usize,
    /// Root seed for the randomized fill (`simexplore:rand` stream).
    pub seed: u64,
    /// Availability drop below the base schedule that counts as a cliff
    /// and triggers shrinking.
    pub cliff_drop: f64,
}

impl ExploreBudget {
    /// A budget with the default cliff threshold (5 points of
    /// availability below the base).
    pub fn new(schedules: usize, seed: u64) -> Self {
        ExploreBudget { schedules, seed, cliff_drop: 0.05 }
    }

    /// Override the cliff threshold.
    pub fn with_cliff_drop(mut self, drop: f64) -> Self {
        self.cliff_drop = drop;
        self
    }
}

/// What one schedule run scored: the two quantities the explorer
/// minimizes/maximizes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduleScore {
    /// Fraction of requests (or work units) that completed successfully.
    pub availability: f64,
    /// Worst single recovery time observed during the run, in seconds.
    pub worst_recovery_s: f64,
}

impl ScheduleScore {
    /// Strict "worse than" ordering: lower availability, ties broken
    /// toward longer worst recovery. `total_cmp` keeps the scan total
    /// (and deterministic) even if a runner produces NaN.
    pub fn worse_than(&self, other: &ScheduleScore) -> bool {
        match self.availability.total_cmp(&other.availability) {
            Ordering::Less => true,
            Ordering::Greater => false,
            Ordering::Equal => {
                self.worst_recovery_s.total_cmp(&other.worst_recovery_s) == Ordering::Greater
            }
        }
    }
}

/// An availability cliff, shrunk to a minimal reproducer.
#[derive(Debug, Clone, PartialEq)]
pub struct Cliff {
    /// Availability drop of the worst schedule below the base.
    pub depth: f64,
    /// Minimal fault plan that still reproduces the cliff: no single
    /// fault can be removed without the drop disappearing.
    pub reproducer: FaultPlan,
    /// The reproducer as a `--fault-plan` spec string.
    pub spec: String,
    /// Removal probes the shrinker ran to reach the fixpoint.
    pub probes: usize,
}

/// The result of [`explore`]: base and worst scores, the worst schedule
/// itself, and the shrunk cliff when one was found.
#[derive(Debug, Clone, PartialEq)]
pub struct ExploreOutcome {
    /// Total schedule runs (candidates plus shrink probes).
    pub schedules_run: usize,
    /// Score of the unperturbed base schedule (candidate 0).
    pub base: ScheduleScore,
    /// The base schedule, normalized (candidate 0's plan).
    pub base_plan: FaultPlan,
    /// Score of the worst schedule found (the base itself when nothing
    /// did worse).
    pub worst: ScheduleScore,
    /// Enumeration index of the worst schedule (0 = base).
    pub worst_index: usize,
    /// Enumeration phase that produced the worst schedule.
    pub worst_phase: &'static str,
    /// Human label of the worst schedule's perturbation.
    pub worst_label: String,
    /// The worst schedule, normalized.
    pub worst_plan: FaultPlan,
    /// The worst schedule as a `--fault-plan` spec string.
    pub worst_spec: String,
    /// Present when the worst schedule dropped availability at least
    /// `cliff_drop` below the base.
    pub cliff: Option<Cliff>,
}

/// Search the perturbation neighbourhood of `base` for the worst
/// schedule. Candidates are enumerated by [`candidates`], scored through
/// `exec` (input-ordered at any `--jobs` width — see the crate docs for
/// the determinism argument), and scanned for the strictly-worst score.
/// A candidate whose runner errors is counted (`outcome="error"`) and
/// skipped; an error on the base schedule is fatal since every
/// comparison anchors on it. When the worst schedule drops availability
/// by at least `budget.cliff_drop`, it is shrunk to a minimal
/// reproducer: removal probes walk fault indices in descending order,
/// keeping any removal that still reproduces the drop, until a full
/// pass removes nothing.
pub fn explore<F>(
    base: &FaultPlan,
    space: &PerturbSpace,
    budget: &ExploreBudget,
    exec: &Executor,
    tel: &mut Telemetry,
    runner: F,
) -> Result<ExploreOutcome, RunError>
where
    F: Fn(&FaultPlan) -> Result<ScheduleScore, SimError> + Sync,
{
    metrics::register_help(tel);
    let cands = candidates(base, space, budget);
    let scores = exec.sweep(
        "explore",
        &cands,
        tel,
        |i, c| format!("{i}:{}:{}", c.phase, c.label),
        |_, c| runner(&c.plan),
    )?;

    let mut schedules_run = 0usize;
    let mut base_score: Option<ScheduleScore> = None;
    let mut worst: Option<(usize, ScheduleScore)> = None;
    for (i, (cand, result)) in cands.iter().zip(scores).enumerate() {
        schedules_run += 1;
        match result {
            Ok(s) => {
                tel.counter_inc(
                    metrics::SCHEDULES_TOTAL,
                    labels(&[("phase", cand.phase), ("outcome", "ok")]),
                );
                if i == 0 {
                    base_score = Some(s);
                }
                let replace = match worst {
                    None => true,
                    Some((_, w)) => s.worse_than(&w),
                };
                if replace {
                    worst = Some((i, s));
                }
            }
            Err(e) => {
                tel.counter_inc(
                    metrics::SCHEDULES_TOTAL,
                    labels(&[("phase", cand.phase), ("outcome", "error")]),
                );
                if i == 0 {
                    return Err(e.into());
                }
            }
        }
    }
    // Candidate 0 is the base and a base error returned above, so both
    // are always present; the fallbacks keep the code panic-free.
    let base_score = base_score.unwrap_or(ScheduleScore { availability: 0.0, worst_recovery_s: 0.0 });
    let (worst_index, worst_score) = worst.unwrap_or((0, base_score));

    let depth = (base_score.availability - worst_score.availability).max(0.0);
    let worst_plan = cands[worst_index].plan.normalized();
    let cliff = if worst_score.availability <= base_score.availability - budget.cliff_drop {
        let (reproducer, probes) = shrink(&worst_plan, base_score, budget, tel, &runner);
        schedules_run += probes;
        let spec = reproducer.to_spec();
        Some(Cliff { depth, reproducer, spec, probes })
    } else {
        None
    };

    tel.gauge_set(metrics::CLIFF_DEPTH, labels(&[]), depth);
    tel.gauge_set(metrics::WORST_AVAILABILITY, labels(&[]), worst_score.availability);
    tel.gauge_set(metrics::WORST_RECOVERY_SECONDS, labels(&[]), worst_score.worst_recovery_s);
    if let (Some(first), Some(last)) = (worst_plan.faults().first(), worst_plan.faults().last()) {
        let track = tel.track_id("explore", "worst-schedule");
        tel.span_on(
            track,
            "explore",
            "worst-schedule",
            first.at,
            last.at.max(first.at + edison_simcore::time::SimDuration::from_millis(1)),
            vec![
                ("phase", cands[worst_index].phase.to_string()),
                ("label", cands[worst_index].label.clone()),
                ("availability", format!("{:.4}", worst_score.availability)),
            ],
        );
    }

    Ok(ExploreOutcome {
        schedules_run,
        base: base_score,
        base_plan: base.normalized(),
        worst: worst_score,
        worst_index,
        worst_phase: cands[worst_index].phase,
        worst_label: cands[worst_index].label.clone(),
        worst_spec: worst_plan.to_spec(),
        worst_plan,
        cliff,
    })
}

/// Greedy delta-debugging shrink: repeatedly probe removing one fault at
/// a time (descending index, so indices below the probe stay stable
/// within a pass), keep any removal that still reproduces the cliff, and
/// stop when a full pass removes nothing. The result is 1-minimal — no
/// single remaining fault is removable. Probe errors count as "does not
/// reproduce" so a fragile removal never shrinks away the evidence.
fn shrink<F>(
    worst: &FaultPlan,
    base: ScheduleScore,
    budget: &ExploreBudget,
    tel: &mut Telemetry,
    runner: &F,
) -> (FaultPlan, usize)
where
    F: Fn(&FaultPlan) -> Result<ScheduleScore, SimError> + Sync,
{
    let threshold = base.availability - budget.cliff_drop;
    let mut current = worst.normalized();
    let mut probes = 0usize;
    loop {
        let mut removed = false;
        let mut idx = current.len();
        while idx > 0 {
            idx -= 1;
            if current.len() <= 1 {
                break;
            }
            let probe = current.without_fault(idx);
            probes += 1;
            match runner(&probe) {
                Ok(s) => {
                    tel.counter_inc(
                        metrics::SCHEDULES_TOTAL,
                        labels(&[("phase", "shrink"), ("outcome", "ok")]),
                    );
                    if s.availability <= threshold {
                        current = probe;
                        removed = true;
                    }
                }
                Err(_) => {
                    tel.counter_inc(
                        metrics::SCHEDULES_TOTAL,
                        labels(&[("phase", "shrink"), ("outcome", "error")]),
                    );
                }
            }
        }
        if !removed {
            break;
        }
    }
    (current, probes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{crashes_inside, PerturbSpace};
    use edison_simcore::time::{SimDuration, SimTime};
    use edison_simfault::RecoveryWindow;

    fn base_plan() -> FaultPlan {
        FaultPlan::new().crash_restart(0, SimTime::from_secs(4), SimDuration::from_secs(2))
    }

    fn window() -> RecoveryWindow {
        RecoveryWindow { node: 0, start: SimTime::from_secs(6), end: SimTime::from_secs(8) }
    }

    /// Synthetic scorer with a planted cliff: any crash strictly inside
    /// the recovery window halves availability.
    fn planted_runner(plan: &FaultPlan) -> Result<ScheduleScore, SimError> {
        if crashes_inside(plan, &window()) {
            Ok(ScheduleScore { availability: 0.50, worst_recovery_s: 9.0 })
        } else {
            Ok(ScheduleScore { availability: 0.95, worst_recovery_s: 2.0 })
        }
    }

    fn full_space() -> PerturbSpace {
        PerturbSpace::full(SimDuration::from_secs(1), vec![window()], vec![], SimDuration::from_secs(2))
    }

    #[test]
    fn finds_planted_cliff_and_shrinks_to_minimal_reproducer() {
        let budget = ExploreBudget::new(12, 42);
        let mut tel = Telemetry::on();
        let out = explore(
            &base_plan(),
            &full_space(),
            &budget,
            &Executor::serial(),
            &mut tel,
            planted_runner,
        )
        .expect("explore");
        assert_eq!(out.base.availability, 0.95);
        assert_eq!(out.worst.availability, 0.50);
        assert_eq!(out.worst_phase, "window");
        let cliff = out.cliff.expect("cliff");
        assert!((cliff.depth - 0.45).abs() < 1e-12);
        // minimal reproducer: only the window crash survives shrinking
        assert_eq!(cliff.reproducer.len(), 1);
        assert!(crashes_inside(&cliff.reproducer, &window()));
        assert!(cliff.spec.contains("crash"), "{}", cliff.spec);
        assert_eq!(FaultPlan::parse(&cliff.spec).expect("spec parses"), cliff.reproducer);
    }

    #[test]
    fn jobs_width_does_not_change_the_outcome() {
        let budget = ExploreBudget::new(16, 7);
        let mut tel1 = Telemetry::on();
        let mut tel8 = Telemetry::on();
        let a = explore(&base_plan(), &full_space(), &budget, &Executor::new(1), &mut tel1, planted_runner)
            .expect("jobs=1");
        let b = explore(&base_plan(), &full_space(), &budget, &Executor::new(8), &mut tel8, planted_runner)
            .expect("jobs=8");
        assert_eq!(a, b);
        assert_eq!(a.worst_spec, b.worst_spec);
    }

    #[test]
    fn no_cliff_when_nothing_beats_the_base() {
        let flat = |_: &FaultPlan| Ok(ScheduleScore { availability: 0.9, worst_recovery_s: 1.0 });
        let mut tel = Telemetry::on();
        let out = explore(
            &base_plan(),
            &PerturbSpace::timing_only(SimDuration::from_secs(1), 1),
            &ExploreBudget::new(6, 3),
            &Executor::serial(),
            &mut tel,
            flat,
        )
        .expect("explore");
        // every score ties; the scan keeps the lowest index — the base
        assert_eq!(out.worst_index, 0);
        assert_eq!(out.worst_phase, "base");
        assert!(out.cliff.is_none());
        assert_eq!(out.schedules_run, 6);
    }

    #[test]
    fn candidate_errors_are_skipped_but_base_error_is_fatal() {
        let fail_late = |plan: &FaultPlan| {
            if plan.faults().iter().any(|f| f.at > SimTime::from_secs(4)) && plan.len() > 2 {
                Err(SimError::Data("boom".to_string()))
            } else {
                Ok(ScheduleScore { availability: 0.9, worst_recovery_s: 1.0 })
            }
        };
        let mut tel = Telemetry::on();
        let out = explore(
            &base_plan(),
            &full_space(),
            &ExploreBudget::new(8, 1),
            &Executor::serial(),
            &mut tel,
            fail_late,
        )
        .expect("errors on non-base candidates are skipped");
        assert_eq!(out.worst_index, 0);

        let fail_all = |_: &FaultPlan| -> Result<ScheduleScore, SimError> {
            Err(SimError::Data("boom".to_string()))
        };
        let mut tel = Telemetry::on();
        let err = explore(
            &base_plan(),
            &full_space(),
            &ExploreBudget::new(4, 1),
            &Executor::serial(),
            &mut tel,
            fail_all,
        );
        assert!(err.is_err());
    }

    #[test]
    fn ties_on_availability_break_toward_longer_recovery() {
        let a = ScheduleScore { availability: 0.9, worst_recovery_s: 2.0 };
        let b = ScheduleScore { availability: 0.9, worst_recovery_s: 3.0 };
        assert!(b.worse_than(&a));
        assert!(!a.worse_than(&b));
        assert!(!a.worse_than(&a));
        let c = ScheduleScore { availability: 0.8, worst_recovery_s: 0.0 };
        assert!(c.worse_than(&a));
    }
}
