//! Systematic fault-interleaving exploration (`simexplore`).
//!
//! `simfault` answers *"what happens under this fault plan"*; this crate
//! answers *"what is the worst schedule near this plan"*. A base
//! [`FaultPlan`] plus a [`PerturbSpace`] define a neighbourhood of
//! candidate schedules: per-fault start jitter, pairwise reorderings of
//! adjacent faults, and follow-up crashes probed inside *observed*
//! recovery windows (the interval where a node is back up but not yet
//! usable — exactly where hand-written plans rarely aim). [`explore`]
//! searches that neighbourhood — exhaustively within a schedule budget,
//! with seed-derived randomized schedules beyond it — for the candidate
//! minimizing availability (ties broken toward maximal recovery time),
//! and delta-debugs any availability cliff down to a minimal reproducer
//! emitted as a `--fault-plan` spec string.
//!
//! ## Determinism argument
//!
//! Every result is a pure function of `(base plan, space, budget)`:
//!
//! * **Candidate enumeration** is a fixed order — base, window probes,
//!   pairwise reorders, start jitter, then randomized fill whose `i`-th
//!   schedule derives from `derive_seed(budget.seed, "simexplore:rand",
//!   i)` — never from map iteration, wall clock, or thread timing.
//! * **Scoring** fans the candidates over the simrun [`Executor`], whose
//!   results come back in input order at any `--jobs` width; the
//!   worst-candidate scan walks that order and replaces only on a
//!   *strictly* worse score (`total_cmp`, no NaN surprises), so ties
//!   resolve to the lowest index.
//! * **Shrinking** probes removals one fault at a time in a fixed
//!   (descending-index) order until a fixpoint, re-running the same
//!   deterministic runner.
//!
//! Hence the same seed and budget produce byte-identical worst-case
//! schedules, spec strings, and metrics at `--jobs 1` and `--jobs 8` —
//! pinned by `crates/core/tests/explore_gate.rs`.

pub mod metrics;
mod search;
mod space;

pub use search::{explore, Cliff, ExploreBudget, ExploreOutcome, ScheduleScore};
pub use space::{candidates, crashes_inside, Candidate, PerturbSpace};

// Re-exported so downstream callers name one crate for the vocabulary.
pub use edison_simfault::{FaultPlan, RecoveryWindow};
