//! The perturbation space and its deterministic candidate enumeration.

use edison_simcore::rng::SimRng;
use edison_simcore::time::{SimDuration, SimTime};
use edison_simfault::{FaultKind, FaultPlan, RecoveryWindow};
use edison_simrun::derive_seed;

use crate::search::ExploreBudget;

/// The neighbourhood explored around a base plan. Every field is plain
/// data: two spaces compare equal exactly when they enumerate the same
/// candidates for the same base plan and budget.
#[derive(Debug, Clone, PartialEq)]
pub struct PerturbSpace {
    /// Maximum ± shift applied to a fault's start time. Shifts clamp at
    /// `t = 0` rather than wrapping.
    pub start_jitter: SimDuration,
    /// Grid points per side in the exhaustive jitter phase (`1` probes
    /// `±start_jitter`, `2` adds `±start_jitter/2`, …).
    pub jitter_steps: u32,
    /// Swap the start times of each adjacent pair of the normalized plan
    /// (the pairwise-reorder phase).
    pub reorder_pairs: bool,
    /// Observed recovery windows to probe with follow-up crashes (from
    /// `Metrics::recovery_windows` / `JobOutcome::recovery_windows` of a
    /// base run). Empty when no base observation is available.
    pub windows: Vec<RecoveryWindow>,
    /// Observed circuit-breaker half-open windows (the guard layer's
    /// `breaker_windows`: half-open entered → probe success closed it).
    /// A crash landing inside one hits the backend mid-probe — the
    /// breaker-flap / shed-storm interleaving guarded tiers are blind to
    /// in polite schedules. Probed exactly like [`windows`], labelled as
    /// the `halfopen` phase. Empty for unguarded base runs.
    pub halfopen_windows: Vec<RecoveryWindow>,
    /// Nodes eligible for window probes. The nastiest interleaving is
    /// usually a crash of a *different* node while the window's node is
    /// restarted-but-not-usable (on a 2-node tier that takes the whole
    /// tier out), so callers pass the full tier here. Empty = probe only
    /// each window's own node.
    pub probe_nodes: Vec<usize>,
    /// Probe points per recovery window, evenly spaced in its interior.
    pub window_steps: u32,
    /// Outage length of each injected probe (`crash_restart` pair).
    pub probe_outage: SimDuration,
}

impl PerturbSpace {
    /// Timing-only neighbourhood: start jitter, no reorders, no window
    /// probes. What `fault_sweep` uses for its worst-case columns, where
    /// no base-run observation is in scope.
    pub fn timing_only(start_jitter: SimDuration, jitter_steps: u32) -> Self {
        PerturbSpace {
            start_jitter,
            jitter_steps,
            reorder_pairs: false,
            windows: Vec::new(),
            halfopen_windows: Vec::new(),
            probe_nodes: Vec::new(),
            window_steps: 0,
            probe_outage: SimDuration::ZERO,
        }
    }

    /// The full neighbourhood: window probes (2 per window per eligible
    /// node), pairwise reorders, and ±`start_jitter` at one grid step
    /// per side.
    pub fn full(
        start_jitter: SimDuration,
        windows: Vec<RecoveryWindow>,
        probe_nodes: Vec<usize>,
        probe_outage: SimDuration,
    ) -> Self {
        PerturbSpace {
            start_jitter,
            jitter_steps: 1,
            reorder_pairs: true,
            windows,
            halfopen_windows: Vec::new(),
            probe_nodes,
            window_steps: 2,
            probe_outage,
        }
    }

    /// This space, additionally probing the given circuit-breaker
    /// half-open windows (from a guarded base run's `breaker_windows`).
    pub fn with_halfopen_windows(mut self, windows: Vec<RecoveryWindow>) -> Self {
        self.halfopen_windows = windows;
        self
    }

    /// The probe-node set for window `w`: the configured tier, or just
    /// the window's own node when none was given.
    fn probe_nodes_for(&self, w: &RecoveryWindow) -> Vec<usize> {
        if self.probe_nodes.is_empty() {
            vec![w.node]
        } else {
            self.probe_nodes.clone()
        }
    }
}

/// One enumerated schedule: the plan, the phase that produced it, and a
/// short human label for sweep-point naming.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// The candidate schedule (normalized base with one perturbation).
    pub plan: FaultPlan,
    /// Which enumeration phase produced it: `base`, `window`, `reorder`,
    /// `jitter`, or `random`.
    pub phase: &'static str,
    /// Human-readable description of the perturbation.
    pub label: String,
}

impl Candidate {
    fn new(plan: FaultPlan, phase: &'static str, label: String) -> Self {
        Candidate { plan, phase, label }
    }
}

/// Shift `at` by `delta_s` seconds (either sign), clamping at `t = 0`.
fn shifted(at: SimTime, delta_s: f64) -> SimTime {
    if delta_s >= 0.0 {
        at + SimDuration::from_secs_f64(delta_s)
    } else {
        at - SimDuration::from_secs_f64(-delta_s).min(SimDuration(at.0))
    }
}

/// Enumerate the candidate schedules for `base` in the deterministic
/// order [`explore`](crate::explore) scores them:
///
/// 1. the normalized base itself (always index 0);
/// 2. recovery-window probes — a `crash_restart` of the window's node at
///    each interior grid point (the highest-value candidates, so a small
///    budget still reaches them);
/// 3. breaker half-open-window probes (guarded base runs only) — the
///    same grid over `halfopen_windows`, hunting breaker-flap cliffs;
/// 4. pairwise reorders of adjacent normalized faults;
/// 5. the start-jitter grid, fault-major then step then `-`/`+` sign;
/// 6. seed-derived randomized schedules filling the remaining budget —
///    every fault jittered uniformly in `±start_jitter`, plus (when
///    recovery or half-open windows were observed) a coin-flipped probe
///    at a uniform point of a uniformly chosen window.
///
/// The list is truncated to `budget.schedules` (minimum 1: the base is
/// never dropped). Purely a function of its arguments.
pub fn candidates(base: &FaultPlan, space: &PerturbSpace, budget: &ExploreBudget) -> Vec<Candidate> {
    let norm = base.normalized();
    let cap = budget.schedules.max(1);
    let mut out = vec![Candidate::new(norm.clone(), "base", "base".to_string())];

    // 2. recovery-window probes
    for (wi, w) in space.windows.iter().enumerate() {
        let width_s = w.end.saturating_since(w.start).as_secs_f64();
        for node in space.probe_nodes_for(w) {
            for k in 1..=space.window_steps {
                let frac = f64::from(k) / f64::from(space.window_steps + 1);
                let at = w.start + SimDuration::from_secs_f64(width_s * frac);
                let plan = norm.clone().crash_restart(node, at, space.probe_outage);
                out.push(Candidate::new(
                    plan,
                    "window",
                    format!("w{wi}+crash{node}@{:.2}s", at.as_secs_f64()),
                ));
            }
        }
    }

    // 3. breaker half-open-window probes: a crash while the backend is
    // being probed re-trips the breaker — the flap the polite base never
    // shows
    for (wi, w) in space.halfopen_windows.iter().enumerate() {
        let width_s = w.end.saturating_since(w.start).as_secs_f64();
        for node in space.probe_nodes_for(w) {
            for k in 1..=space.window_steps {
                let frac = f64::from(k) / f64::from(space.window_steps + 1);
                let at = w.start + SimDuration::from_secs_f64(width_s * frac);
                let plan = norm.clone().crash_restart(node, at, space.probe_outage);
                out.push(Candidate::new(
                    plan,
                    "halfopen",
                    format!("h{wi}+crash{node}@{:.2}s", at.as_secs_f64()),
                ));
            }
        }
    }

    // 4. pairwise reorders of adjacent normalized faults
    if space.reorder_pairs {
        for i in 0..norm.len().saturating_sub(1) {
            let (a, b) = (norm.faults()[i], norm.faults()[i + 1]);
            if a.at == b.at {
                continue;
            }
            let plan = norm.with_fault_at(i, b.at).with_fault_at(i + 1, a.at);
            out.push(Candidate::new(plan, "reorder", format!("swap{i}<>{}", i + 1)));
        }
    }

    // 5. the start-jitter grid
    let jitter_s = space.start_jitter.as_secs_f64();
    if jitter_s > 0.0 {
        for i in 0..norm.len() {
            for step in (1..=space.jitter_steps).rev() {
                let mag = jitter_s * f64::from(step) / f64::from(space.jitter_steps.max(1));
                for sign in [-1.0, 1.0] {
                    let at = shifted(norm.faults()[i].at, sign * mag);
                    out.push(Candidate::new(
                        norm.with_fault_at(i, at),
                        "jitter",
                        format!("f{i}{}{mag:.2}s", if sign < 0.0 { '-' } else { '+' }),
                    ));
                }
            }
        }
    }

    out.truncate(cap);

    // 6. seed-derived randomized fill; recovery and half-open windows
    // pool into one probe target list (an empty half-open list leaves
    // the draw sequence — and therefore old candidates — untouched)
    let pool: Vec<RecoveryWindow> =
        space.windows.iter().chain(space.halfopen_windows.iter()).copied().collect();
    let mut ri: u64 = 0;
    while out.len() < cap {
        let mut rng = SimRng::new(derive_seed(budget.seed, "simexplore:rand", ri));
        let mut plan = norm.clone();
        if jitter_s > 0.0 {
            for i in 0..plan.len() {
                let delta = rng.range_f64(-jitter_s, jitter_s);
                let at = shifted(norm.faults()[i].at, delta);
                plan = plan.with_fault_at(i, at);
            }
        }
        if !pool.is_empty() && rng.chance(0.5) {
            let wi = usize::try_from(rng.below(pool.len() as u64)).unwrap_or(0);
            let w = pool[wi];
            let nodes = space.probe_nodes_for(&w);
            let node = nodes[usize::try_from(rng.below(nodes.len() as u64)).unwrap_or(0)];
            let width_s = w.end.saturating_since(w.start).as_secs_f64();
            let at = w.start + SimDuration::from_secs_f64(width_s * rng.uniform());
            plan = plan.crash_restart(node, at, space.probe_outage);
        }
        out.push(Candidate::new(plan, "random", format!("r{ri}")));
        ri += 1;
    }
    out
}

/// True when `plan` schedules a [`FaultKind::NodeCrash`] strictly inside
/// `(w.start, w.end)` — a crash landing while the window's node is
/// restarted but not yet usable, the interleaving the explorer exists to
/// find (on any node: crashing a *healthy* sibling during the window is
/// usually the worst case). Used by tests and the fixture gate.
pub fn crashes_inside(plan: &FaultPlan, w: &RecoveryWindow) -> bool {
    plan.faults()
        .iter()
        .any(|f| matches!(f.kind, FaultKind::NodeCrash) && f.at > w.start && f.at < w.end)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> FaultPlan {
        FaultPlan::new().crash_restart(0, SimTime::from_secs(4), SimDuration::from_secs(2))
    }

    fn window() -> RecoveryWindow {
        RecoveryWindow { node: 0, start: SimTime::from_secs(6), end: SimTime::from_secs(8) }
    }

    #[test]
    fn enumeration_is_deterministic_base_first_budget_bounded() {
        let space =
            PerturbSpace::full(SimDuration::from_secs(1), vec![window()], vec![], SimDuration::from_secs(2));
        let budget = ExploreBudget::new(8, 42);
        let a = candidates(&base(), &space, &budget);
        let b = candidates(&base(), &space, &budget);
        assert_eq!(a, b);
        assert_eq!(a.len(), 8);
        assert_eq!(a[0].phase, "base");
        assert_eq!(a[0].plan, base().normalized());
        // window probes come right after the base so small budgets reach them
        assert_eq!(a[1].phase, "window");
        assert!(crashes_inside(&a[1].plan, &window()), "{:?}", a[1].plan);
    }

    #[test]
    fn halfopen_windows_are_probed_after_recovery_windows() {
        let ho = RecoveryWindow { node: 1, start: SimTime::from_secs(9), end: SimTime::from_secs(11) };
        let space = PerturbSpace::full(
            SimDuration::from_secs(1),
            vec![window()],
            vec![],
            SimDuration::from_secs(2),
        )
        .with_halfopen_windows(vec![ho]);
        let cands = candidates(&base(), &space, &ExploreBudget::new(16, 42));
        // phase order: base, window probes, then half-open probes
        assert_eq!(cands[0].phase, "base");
        assert_eq!(cands[1].phase, "window");
        let first_ho = cands.iter().position(|c| c.phase == "halfopen").expect("halfopen probed");
        assert!(first_ho > 1);
        assert!(
            crashes_inside(&cands[first_ho].plan, &ho),
            "half-open probe must land inside the breaker window: {:?}",
            cands[first_ho].plan
        );
        // probes crash the window's own node when no tier list was given
        assert!(cands[first_ho].label.contains("crash1"), "{}", cands[first_ho].label);
        // an empty half-open list changes nothing (guards-off identity)
        let plain = PerturbSpace::full(
            SimDuration::from_secs(1),
            vec![window()],
            vec![],
            SimDuration::from_secs(2),
        );
        let without: Vec<_> = candidates(&base(), &plain, &ExploreBudget::new(16, 42));
        assert!(without.iter().all(|c| c.phase != "halfopen"));
        // random tail draws identically with an empty half-open pool
        assert_eq!(
            without.iter().filter(|c| c.phase == "random").count() > 0,
            true,
            "budget 16 must reach the random phase for this check to bite"
        );
        let with_empty = candidates(
            &base(),
            &plain.clone().with_halfopen_windows(vec![]),
            &ExploreBudget::new(16, 42),
        );
        assert_eq!(without, with_empty);
    }

    #[test]
    fn random_fill_extends_past_the_exhaustive_phase() {
        let space = PerturbSpace::timing_only(SimDuration::from_secs(1), 1);
        // 1 base + 4 jitter candidates exhaust the space; the rest is random
        let cands = candidates(&base(), &space, &ExploreBudget::new(9, 7));
        assert_eq!(cands.len(), 9);
        assert_eq!(cands[5].phase, "random");
        // a different seed changes the random tail but not the grid
        let other = candidates(&base(), &space, &ExploreBudget::new(9, 8));
        assert_eq!(cands[..5], other[..5]);
        assert_ne!(cands[5..], other[5..]);
    }

    #[test]
    fn jitter_clamps_at_time_zero() {
        let early = FaultPlan::new().crash(0, SimTime::from_millis(100));
        let space = PerturbSpace::timing_only(SimDuration::from_secs(1), 1);
        let cands = candidates(&early, &space, &ExploreBudget::new(4, 0));
        assert!(cands.iter().all(|c| c.plan.faults().iter().all(|f| f.at.0 < u64::MAX / 2)));
        assert!(cands.iter().any(|c| c.plan.faults()[0].at == SimTime::ZERO));
    }

    #[test]
    fn reorder_swaps_adjacent_start_times() {
        let mut space = PerturbSpace::timing_only(SimDuration::ZERO, 0);
        space.reorder_pairs = true;
        let cands = candidates(&base(), &space, &ExploreBudget::new(2, 0));
        assert_eq!(cands[1].phase, "reorder");
        // the crash and restart trade places: restart at 4 s, crash at 6 s
        let swapped = cands[1].plan.normalized();
        assert_eq!(swapped.faults()[0].kind, FaultKind::NodeRestart);
        assert_eq!(swapped.faults()[0].at, SimTime::from_secs(4));
        assert_eq!(swapped.faults()[1].kind, FaultKind::NodeCrash);
    }
}
