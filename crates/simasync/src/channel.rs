//! Deterministic single-threaded channels.
//!
//! Both flavours are plain `Rc<RefCell<…>>` mailboxes: a send enqueues the
//! value and wakes the receiver; the receiver drains values in send order.
//! Nothing here depends on wake *order* — the sequence of received values
//! is exactly the sequence of sends, however the executor interleaves the
//! polls in between — which is the property the workload layer relies on
//! (and the proptests pin).
//!
//! `try_recv` is the deliberate exception: its result depends on whether
//! the sender has run yet, i.e. on scheduling. simlint's R7 determinism
//! taint treats it (and select winners) as a nondeterminism source for
//! exactly that reason.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

/// Error returned when the counterpart endpoint is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Closed;

// ---- one-shot ---------------------------------------------------------

#[derive(Debug)]
struct OneShared<T> {
    value: Option<T>,
    sender_gone: bool,
    receiver_gone: bool,
    waker: Option<Waker>,
}

/// Sending half of a one-shot channel; consumed by [`OneSender::send`].
#[derive(Debug)]
pub struct OneSender<T> {
    shared: Rc<RefCell<OneShared<T>>>,
    sent: bool,
}

/// Receiving half of a one-shot channel; a future resolving to the sent
/// value, or `Err(Closed)` if the sender dropped without sending.
#[derive(Debug)]
pub struct OneReceiver<T> {
    shared: Rc<RefCell<OneShared<T>>>,
}

/// A deterministic one-shot channel.
pub fn oneshot<T>() -> (OneSender<T>, OneReceiver<T>) {
    let shared = Rc::new(RefCell::new(OneShared {
        value: None,
        sender_gone: false,
        receiver_gone: false,
        waker: None,
    }));
    (OneSender { shared: Rc::clone(&shared), sent: false }, OneReceiver { shared })
}

impl<T> OneSender<T> {
    /// Deliver the value, waking the receiver. `Err(value)` if the
    /// receiver is already gone.
    pub fn send(mut self, value: T) -> Result<(), T> {
        let mut s = self.shared.borrow_mut();
        if s.receiver_gone {
            return Err(value);
        }
        s.value = Some(value);
        self.sent = true;
        let waker = s.waker.take();
        drop(s);
        if let Some(w) = waker {
            w.wake();
        }
        Ok(())
    }
}

impl<T> Drop for OneSender<T> {
    fn drop(&mut self) {
        if self.sent {
            // the value sits in the slot; this is not a close
            return;
        }
        let mut s = self.shared.borrow_mut();
        s.sender_gone = true;
        let waker = s.waker.take();
        drop(s);
        if let Some(w) = waker {
            w.wake();
        }
    }
}

impl<T> Future for OneReceiver<T> {
    type Output = Result<T, Closed>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut s = self.shared.borrow_mut();
        if let Some(v) = s.value.take() {
            return Poll::Ready(Ok(v));
        }
        if s.sender_gone {
            return Poll::Ready(Err(Closed));
        }
        s.waker = Some(cx.waker().clone());
        Poll::Pending
    }
}

impl<T> Drop for OneReceiver<T> {
    fn drop(&mut self) {
        self.shared.borrow_mut().receiver_gone = true;
    }
}

// ---- mpsc -------------------------------------------------------------

#[derive(Debug)]
struct MpscShared<T> {
    queue: VecDeque<T>,
    senders: usize,
    receiver_gone: bool,
    waker: Option<Waker>,
}

/// Cloneable sending half of an unbounded mpsc channel.
#[derive(Debug)]
pub struct Sender<T> {
    shared: Rc<RefCell<MpscShared<T>>>,
}

/// Receiving half of an unbounded mpsc channel.
#[derive(Debug)]
pub struct Receiver<T> {
    shared: Rc<RefCell<MpscShared<T>>>,
}

/// A deterministic unbounded multi-producer single-consumer channel.
pub fn mpsc<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Rc::new(RefCell::new(MpscShared {
        queue: VecDeque::new(),
        senders: 1,
        receiver_gone: false,
        waker: None,
    }));
    (Sender { shared: Rc::clone(&shared) }, Receiver { shared })
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.borrow_mut().senders += 1;
        Sender { shared: Rc::clone(&self.shared) }
    }
}

impl<T> Sender<T> {
    /// Enqueue a value in send order, waking the receiver. `Err(value)`
    /// if the receiver is gone.
    pub fn send(&self, value: T) -> Result<(), T> {
        let mut s = self.shared.borrow_mut();
        if s.receiver_gone {
            return Err(value);
        }
        s.queue.push_back(value);
        let waker = s.waker.take();
        drop(s);
        if let Some(w) = waker {
            w.wake();
        }
        Ok(())
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut s = self.shared.borrow_mut();
        s.senders -= 1;
        let waker = if s.senders == 0 { s.waker.take() } else { None };
        drop(s);
        if let Some(w) = waker {
            w.wake();
        }
    }
}

impl<T> Receiver<T> {
    /// Await the next value in send order; `None` once every sender is
    /// gone and the queue is drained.
    pub fn recv(&mut self) -> Recv<'_, T> {
        Recv { receiver: self }
    }

    /// Non-blocking poll of the queue head. **Scheduling-sensitive**: the
    /// answer depends on whether senders have run yet — a determinism
    /// taint source under simlint R7.
    pub fn try_recv(&mut self) -> Option<T> {
        self.shared.borrow_mut().queue.pop_front()
    }

    /// Values currently queued.
    pub fn len(&self) -> usize {
        self.shared.borrow().queue.len()
    }

    /// True when nothing is queued right now.
    pub fn is_empty(&self) -> bool {
        self.shared.borrow().queue.is_empty()
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.borrow_mut().receiver_gone = true;
    }
}

/// Future returned by [`Receiver::recv`].
#[derive(Debug)]
pub struct Recv<'a, T> {
    receiver: &'a mut Receiver<T>,
}

impl<T> Future for Recv<'_, T> {
    type Output = Option<T>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut s = self.receiver.shared.borrow_mut();
        if let Some(v) = s.queue.pop_front() {
            return Poll::Ready(Some(v));
        }
        if s.senders == 0 {
            return Poll::Ready(None);
        }
        s.waker = Some(cx.waker().clone());
        Poll::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Executor;

    #[test]
    fn oneshot_delivers_once() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut exec = Executor::new();
        let (tx, rx) = oneshot::<u32>();
        let l = Rc::clone(&log);
        exec.spawn(async move {
            l.borrow_mut().push(rx.await);
        });
        exec.drain();
        tx.send(42).expect("receiver alive");
        exec.drain();
        assert_eq!(*log.borrow(), vec![Ok(42)]);
    }

    #[test]
    fn dropped_oneshot_sender_closes() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut exec = Executor::new();
        let (tx, rx) = oneshot::<u32>();
        let l = Rc::clone(&log);
        exec.spawn(async move {
            l.borrow_mut().push(rx.await);
        });
        exec.drain();
        drop(tx);
        exec.drain();
        assert_eq!(*log.borrow(), vec![Err(Closed)]);
    }

    #[test]
    fn oneshot_send_to_dropped_receiver_fails() {
        let (tx, rx) = oneshot::<u32>();
        drop(rx);
        assert_eq!(tx.send(9), Err(9));
    }

    #[test]
    fn mpsc_preserves_send_order() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut exec = Executor::new();
        let (tx, mut rx) = mpsc::<u32>();
        let l = Rc::clone(&log);
        exec.spawn(async move {
            while let Some(v) = rx.recv().await {
                l.borrow_mut().push(v);
            }
            l.borrow_mut().push(999);
        });
        exec.drain();
        let tx2 = tx.clone();
        tx.send(1).expect("alive");
        tx2.send(2).expect("alive");
        exec.drain();
        tx.send(3).expect("alive");
        drop(tx);
        drop(tx2);
        exec.drain();
        assert_eq!(*log.borrow(), vec![1, 2, 3, 999]);
    }

    #[test]
    fn try_recv_sees_only_what_already_ran() {
        let (tx, mut rx) = mpsc::<u32>();
        assert_eq!(rx.try_recv(), None);
        tx.send(5).expect("alive");
        assert_eq!(rx.len(), 1);
        assert_eq!(rx.try_recv(), Some(5));
        assert!(rx.is_empty());
    }
}
