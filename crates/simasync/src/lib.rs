//! # simasync — deterministic async/await over the simulation kernel
//!
//! Workload logic in this workspace has so far been written as explicit
//! state machines: an event enum, a `match` in [`Model::handle`], and
//! request structs that carry their own "where was I" fields. This crate
//! lets the same logic be written as straight-line `async fn`s while
//! keeping the property the whole repo is built on: **same seed, same
//! `--jobs` width, byte-identical results**.
//!
//! The pieces:
//!
//! * [`Executor`] — a single-threaded task arena. Wakes go through a FIFO
//!   ready queue with per-task dedup; ids are handed out in spawn order
//!   and never reused. No `unsafe`: wakers are [`std::task::Wake`] over
//!   `Arc`.
//! * [`EventSlots`] — the bridge from engine events to futures. A world
//!   `fire`s a key when it dispatches the matching event; the `await`ing
//!   task resumes. `cancel` resumes the waiter with
//!   [`Delivery::Cancelled`] instead (fault injection), and dropping a
//!   task mid-wait deregisters cleanly.
//! * [`channel`] — deterministic one-shot and mpsc channels; receive
//!   order is send order, independent of wake interleaving.
//! * [`Timers`] / [`AsyncSim`] — `sleep(sim_duration)` backed by engine
//!   events of kind `task_wake`, profiler-visible like any other kind.
//! * [`join2`] / [`select2`] — combinators whose tie-breaks are the
//!   stable branch order, never host scheduling.
//!
//! Determinism argument, in one paragraph: every wake is issued by
//! deterministic simulation code (an event handler, a send, a timer
//! fire), the ready queue orders polls by first-wake order with FIFO
//! tie-breaking on stable task ids, and polls themselves only touch
//! sim-state. Therefore the complete poll/side-effect sequence is a pure
//! function of (seed, spawned futures) — there is no thread pool, no
//! clock, and no map-iteration-order anywhere in the loop. See
//! `DESIGN.md` §"Deterministic async" for the long form.

pub mod channel;
pub mod combin;
pub mod event;
pub mod executor;
pub mod timer;

pub use channel::{mpsc, oneshot, Closed, OneReceiver, OneSender, Receiver, Sender};
pub use combin::{join2, select2, Either, Join2, Select2};
pub use event::{Delivery, EventSlots, EventWait};
pub use executor::{Executor, TaskId};
pub use timer::{AsyncSim, Sleep, Timers, WakeEv};
