//! Sim-time timers and the ready-made task-driving world.
//!
//! [`Timers::sleep`] registers a deadline; a driving [`crate::Model`]
//! world converts fresh deadlines into engine events (kind `task_wake`,
//! visible to the [`KindProfiler`] like every other event kind) and calls
//! [`Timers::fire`] when the kernel dispatches them. [`AsyncSim`] is that
//! driving world, packaged: spawn futures, call [`AsyncSim::run`], and
//! the executor + timer plumbing rides the deterministic event heap.
//!
//! Determinism: timer ids increase in creation (sleep-call) order, the
//! kernel orders equal deadlines by schedule order, and each fired timer
//! wakes exactly one task — so the full poll sequence is a pure function
//! of the spawned futures, independent of host scheduling.

use crate::executor::{Executor, TaskId};
use edison_simcore::time::{SimDuration, SimTime};
use edison_simcore::{Ctx, KindProfiler, Model, Simulation};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

#[derive(Debug)]
enum TimerState {
    Pending(Option<Waker>),
    Fired,
}

#[derive(Debug, Default)]
struct TimerInner {
    now: SimTime,
    next_id: u64,
    /// Deadlines requested since the last [`Timers::take_requests`].
    fresh: Vec<(u64, SimTime)>,
    waiting: BTreeMap<u64, TimerState>,
}

/// Shared timer registry handle. Clone freely; all clones share state.
#[derive(Debug, Clone, Default)]
pub struct Timers {
    inner: Rc<RefCell<TimerInner>>,
}

impl Timers {
    /// An empty registry at t = 0.
    pub fn new() -> Self {
        Timers::default()
    }

    /// Advance the registry's notion of now (called by the driving world
    /// at each event dispatch).
    pub fn advance_to(&self, t: SimTime) {
        let mut inner = self.inner.borrow_mut();
        debug_assert!(t >= inner.now, "sim time went backwards");
        inner.now = t;
    }

    /// The registry's current sim time.
    pub fn now(&self) -> SimTime {
        self.inner.borrow().now
    }

    /// Sleep for `d` of sim time. Resolves when the driving world fires
    /// the timer's wake event.
    pub fn sleep(&self, d: SimDuration) -> Sleep {
        let mut inner = self.inner.borrow_mut();
        let id = inner.next_id;
        inner.next_id += 1;
        let at = inner.now + d;
        inner.fresh.push((id, at));
        inner.waiting.insert(id, TimerState::Pending(None));
        Sleep { timers: self.clone(), id, done: false }
    }

    /// Drain deadline requests registered since the last call, in
    /// creation order. The driving world schedules one wake event per
    /// entry.
    pub fn take_requests(&self) -> Vec<(u64, SimTime)> {
        std::mem::take(&mut self.inner.borrow_mut().fresh)
    }

    /// Fire timer `id`, waking its sleeper. `false` when the sleeper is
    /// gone (its task completed or was cancelled) — a stale wake event is
    /// a no-op.
    pub fn fire(&self, id: u64) -> bool {
        let mut inner = self.inner.borrow_mut();
        let Some(state) = inner.waiting.get_mut(&id) else { return false };
        let waker = match std::mem::replace(state, TimerState::Fired) {
            TimerState::Pending(w) => w,
            TimerState::Fired => None,
        };
        drop(inner);
        if let Some(w) = waker {
            w.wake();
        }
        true
    }

    /// Sleepers not yet fired-and-consumed.
    pub fn pending(&self) -> usize {
        self.inner.borrow().waiting.len()
    }
}

/// Future returned by [`Timers::sleep`].
#[derive(Debug)]
pub struct Sleep {
    timers: Timers,
    id: u64,
    done: bool,
}

impl Future for Sleep {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let mut inner = self.timers.inner.borrow_mut();
        match inner.waiting.get_mut(&self.id) {
            Some(TimerState::Fired) => {
                inner.waiting.remove(&self.id);
                drop(inner);
                self.done = true;
                Poll::Ready(())
            }
            Some(TimerState::Pending(w)) => {
                *w = Some(cx.waker().clone());
                Poll::Pending
            }
            None => {
                debug_assert!(self.done, "timer slot vanished under a live sleep");
                Poll::Pending
            }
        }
    }
}

impl Drop for Sleep {
    fn drop(&mut self) {
        if !self.done {
            self.timers.inner.borrow_mut().waiting.remove(&self.id);
        }
    }
}

/// The wake event of the task-driving world: one per fired timer.
#[derive(Debug)]
pub enum WakeEv {
    /// Timer `timer` reached its deadline; fire it and drain the executor.
    TaskWake {
        /// The timer id handed out by [`Timers::sleep`].
        timer: u64,
    },
}

impl WakeEv {
    /// Static event-kind name for engine-level telemetry and profiling.
    pub fn kind(&self) -> &'static str {
        match self {
            WakeEv::TaskWake { .. } => "task_wake",
        }
    }
}

/// A packaged [`Model`] that runs spawned futures over the event kernel,
/// with [`Timers::sleep`] as the only blocking primitive. The executor
/// for richer worlds (the web lifecycle port) is driven by those worlds'
/// own event enums instead; this world is the minimal, reusable core —
/// and the unit under test for the timer/executor proptests.
#[derive(Debug, Default)]
pub struct AsyncSim {
    exec: Executor,
    timers: Timers,
}

impl AsyncSim {
    /// An empty world.
    pub fn new() -> Self {
        AsyncSim::default()
    }

    /// The shared timer handle (clone it into spawned futures).
    pub fn timers(&self) -> Timers {
        self.timers.clone()
    }

    /// Spawn a future; it first runs when [`AsyncSim::run`] starts.
    pub fn spawn(&mut self, future: impl Future<Output = ()> + 'static) -> TaskId {
        self.exec.spawn(future)
    }

    /// Direct access to the executor (cancellation, liveness checks).
    pub fn executor_mut(&mut self) -> &mut Executor {
        &mut self.exec
    }

    /// Run every spawned task to completion (or quiescence: tasks blocked
    /// forever on never-fired waits simply stop the clock). Returns the
    /// finished world.
    pub fn run(self) -> AsyncSim {
        Self::drive(self, |sim| {
            sim.run();
        })
    }

    /// Like [`AsyncSim::run`], but profiled: returns the world plus the
    /// deterministic engine profile, whose `task_wake` entry makes waker
    /// wakeups first-class in the `profile_*` vocabulary.
    pub fn run_profiled(self) -> (AsyncSim, edison_simcore::EngineProfile) {
        let mut prof = KindProfiler::new(WakeEv::kind);
        let mut obs = edison_simcore::NoopObserver;
        let mut profile = None;
        let world = Self::drive(self, |sim| {
            sim.run_profiled(&mut obs, &mut prof);
            profile = Some(prof.finish(sim));
        });
        (world, profile.unwrap_or_default())
    }

    fn drive(mut self, run: impl FnOnce(&mut Simulation<AsyncSim>)) -> AsyncSim {
        // run every task to its first await before the kernel starts, so
        // the initial sleep set exists as events
        self.exec.drain();
        let initial = self.timers.take_requests();
        let mut sim = Simulation::new(self);
        for (id, at) in initial {
            sim.schedule_at(at, WakeEv::TaskWake { timer: id });
        }
        run(&mut sim);
        sim.into_world()
    }

    /// Total polls the executor performed.
    pub fn polls_total(&self) -> u64 {
        self.exec.polls_total()
    }
}

impl Model for AsyncSim {
    type Event = WakeEv;

    fn handle(&mut self, now: SimTime, event: WakeEv, ctx: &mut Ctx<WakeEv>) {
        let WakeEv::TaskWake { timer } = event;
        self.timers.advance_to(now);
        self.timers.fire(timer);
        self.exec.drain();
        for (id, at) in self.timers.take_requests() {
            ctx.schedule_at(at, WakeEv::TaskWake { timer: id });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sleeps_resolve_in_deadline_order() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut world = AsyncSim::new();
        let timers = world.timers();
        // spawn in an order unrelated to the deadlines
        for (label, ms) in [(0u32, 30u64), (1, 10), (2, 20)] {
            let (t, l) = (timers.clone(), Rc::clone(&log));
            world.spawn(async move {
                t.sleep(SimDuration::from_millis(ms)).await;
                l.borrow_mut().push((label, t.now()));
            });
        }
        let done = world.run();
        let got: Vec<u32> = log.borrow().iter().map(|&(l, _)| l).collect();
        assert_eq!(got, vec![1, 2, 0], "wakes follow deadlines, not spawn order");
        assert_eq!(done.timers.pending(), 0);
    }

    #[test]
    fn equal_deadlines_resolve_in_sleep_creation_order() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut world = AsyncSim::new();
        let timers = world.timers();
        for label in 0..5u32 {
            let (t, l) = (timers.clone(), Rc::clone(&log));
            world.spawn(async move {
                t.sleep(SimDuration::from_millis(10)).await;
                l.borrow_mut().push(label);
            });
        }
        world.run();
        assert_eq!(*log.borrow(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn sequential_sleeps_accumulate_sim_time() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut world = AsyncSim::new();
        let timers = world.timers();
        let l = Rc::clone(&log);
        world.spawn(async move {
            for _ in 0..3 {
                timers.sleep(SimDuration::from_secs(2)).await;
                l.borrow_mut().push(timers.now());
            }
        });
        world.run();
        let want: Vec<SimTime> =
            (1..=3).map(|i| SimTime::ZERO + SimDuration::from_secs(2 * i)).collect();
        assert_eq!(*log.borrow(), want);
    }

    #[test]
    fn profiled_run_sees_task_wake_kind() {
        let mut world = AsyncSim::new();
        let timers = world.timers();
        world.spawn(async move {
            timers.sleep(SimDuration::from_millis(5)).await;
            timers.sleep(SimDuration::from_millis(5)).await;
        });
        let (_, profile) = world.run_profiled();
        let wake = profile.kinds.get("task_wake").expect("task_wake profiled");
        assert_eq!(wake.dispatched, 2, "one dispatch per fired timer");
    }

    #[test]
    fn cancelled_sleeper_ignores_its_wake_event() {
        let mut world = AsyncSim::new();
        let timers = world.timers();
        let id = world.spawn(async move {
            timers.sleep(SimDuration::from_secs(1)).await;
            unreachable!("cancelled before the deadline");
        });
        // run the task to its first await, then cancel it; the wake event
        // still fires in the kernel and must be a clean no-op
        world.exec.drain();
        assert!(world.exec.cancel(id));
        let done = world.run();
        assert_eq!(done.timers.pending(), 0, "Sleep::drop deregistered");
    }
}
