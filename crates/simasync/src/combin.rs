//! Deterministic `join` / `select` combinators.
//!
//! Both poll their branches in a *fixed* order — branch 0 (`a`) first,
//! then branch 1 (`b`) — every time. The branch index is the stable id
//! that breaks ties: when both futures complete in the same poll,
//! [`select2`] always yields the left branch, so a run's outcome can
//! never depend on wake-arrival order, host speed, or `--jobs` width.
//! The losing branch of a `select2` is dropped (destructors run) before
//! the winner's value is returned.

use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll};

/// Which branch of a [`select2`] won.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Either<A, B> {
    /// The first (left) future completed first — including on ties.
    Left(A),
    /// The second (right) future completed first.
    Right(B),
}

/// Future of [`join2`].
#[derive(Debug)]
pub struct Join2<FA: Future, FB: Future> {
    a: Pin<Box<FA>>,
    b: Pin<Box<FB>>,
    got_a: Option<FA::Output>,
    got_b: Option<FB::Output>,
}

/// Run two futures concurrently; resolves with both outputs once both
/// are done. Branches are polled left-then-right, deterministically.
pub fn join2<FA: Future, FB: Future>(a: FA, b: FB) -> Join2<FA, FB> {
    Join2 { a: Box::pin(a), b: Box::pin(b), got_a: None, got_b: None }
}

// Sound: the inner futures are heap-pinned (`Pin<Box<_>>`); moving the
// combinator moves only handles and by-value outputs.
impl<FA: Future, FB: Future> Unpin for Join2<FA, FB> {}

impl<FA: Future, FB: Future> Future for Join2<FA, FB> {
    type Output = (FA::Output, FB::Output);

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = Pin::into_inner(self);
        if this.got_a.is_none() {
            if let Poll::Ready(v) = this.a.as_mut().poll(cx) {
                this.got_a = Some(v);
            }
        }
        if this.got_b.is_none() {
            if let Poll::Ready(v) = this.b.as_mut().poll(cx) {
                this.got_b = Some(v);
            }
        }
        match (this.got_a.take(), this.got_b.take()) {
            (Some(a), Some(b)) => Poll::Ready((a, b)),
            (a, b) => {
                this.got_a = a;
                this.got_b = b;
                Poll::Pending
            }
        }
    }
}

/// Future of [`select2`].
#[derive(Debug)]
pub struct Select2<FA: Future, FB: Future> {
    a: Option<Pin<Box<FA>>>,
    b: Option<Pin<Box<FB>>>,
}

/// Race two futures; resolves with the first to complete, dropping the
/// loser. Ties go to the left branch (the stable branch-id order), so
/// the winner is a pure function of simulation state.
pub fn select2<FA: Future, FB: Future>(a: FA, b: FB) -> Select2<FA, FB> {
    Select2 { a: Some(Box::pin(a)), b: Some(Box::pin(b)) }
}

// Sound for the same reason as `Join2`: only `Pin<Box<_>>` handles move.
impl<FA: Future, FB: Future> Unpin for Select2<FA, FB> {}

impl<FA: Future, FB: Future> Future for Select2<FA, FB> {
    type Output = Either<FA::Output, FB::Output>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = Pin::into_inner(self);
        if let Some(fa) = this.a.as_mut() {
            if let Poll::Ready(v) = fa.as_mut().poll(cx) {
                this.a = None;
                this.b = None; // drop the loser before returning
                return Poll::Ready(Either::Left(v));
            }
        }
        if let Some(fb) = this.b.as_mut() {
            if let Poll::Ready(v) = fb.as_mut().poll(cx) {
                this.b = None;
                this.a = None;
                return Poll::Ready(Either::Right(v));
            }
        }
        Poll::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timer::AsyncSim;
    use edison_simcore::time::SimDuration;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn join_waits_for_both() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut world = AsyncSim::new();
        let t = world.timers();
        let l = Rc::clone(&log);
        world.spawn(async move {
            let (a, b) = join2(
                async {
                    t.sleep(SimDuration::from_millis(20)).await;
                    1u32
                },
                async {
                    t.sleep(SimDuration::from_millis(10)).await;
                    2u32
                },
            )
            .await;
            l.borrow_mut().push((a, b, t.now()));
        });
        world.run();
        let got = log.borrow()[0];
        assert_eq!((got.0, got.1), (1, 2));
        assert_eq!(got.2, edison_simcore::SimTime::ZERO + SimDuration::from_millis(20));
    }

    #[test]
    fn select_takes_the_earlier_branch() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut world = AsyncSim::new();
        let t = world.timers();
        let l = Rc::clone(&log);
        world.spawn(async move {
            let won = select2(
                async {
                    t.sleep(SimDuration::from_millis(30)).await;
                    "slow"
                },
                async {
                    t.sleep(SimDuration::from_millis(5)).await;
                    "fast"
                },
            )
            .await;
            l.borrow_mut().push(won);
        });
        world.run();
        assert_eq!(*log.borrow(), vec![Either::Right("fast")]);
    }

    #[test]
    fn select_tie_goes_left_and_drops_the_loser() {
        struct Guard(Rc<RefCell<u32>>);
        impl Drop for Guard {
            fn drop(&mut self) {
                *self.0.borrow_mut() += 1;
            }
        }
        let drops = Rc::new(RefCell::new(0u32));
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut world = AsyncSim::new();
        let t = world.timers();
        let (l, d) = (Rc::clone(&log), Rc::clone(&drops));
        let t2 = t.clone();
        world.spawn(async move {
            let g = Guard(d);
            let won = select2(
                async {
                    t.sleep(SimDuration::from_millis(10)).await;
                    "left"
                },
                async move {
                    let _held = g;
                    t2.sleep(SimDuration::from_millis(10)).await;
                    "right"
                },
            )
            .await;
            l.borrow_mut().push(won);
        });
        world.run();
        assert_eq!(*log.borrow(), vec![Either::Left("left")], "equal deadlines: left wins");
        assert_eq!(*drops.borrow(), 1, "losing branch dropped exactly once");
    }
}
