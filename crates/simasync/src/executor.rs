//! The single-threaded deterministic task executor.
//!
//! A [`Executor`] owns an arena of futures keyed by monotonically
//! increasing [`TaskId`]s (ids are never reused, so a stale id can never
//! alias a newer task). Wakes go through a FIFO ready queue with
//! per-task dedup: a task woken twice before its next poll is polled
//! once, at its *earliest* wake position. Every wake in this workspace is
//! itself issued from deterministic code (event handlers, channel sends,
//! timer fires), so the drain order — and therefore every side effect a
//! task performs — is a pure function of the simulation inputs.
//!
//! There is no `unsafe` here: wakers are built from [`std::task::Wake`]
//! over an `Arc`, and the ready queue lives behind a `Mutex` (uncontended
//! — everything runs on one thread; the lock exists only to satisfy the
//! `Send + Sync` bound `Waker` demands).

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Wake, Waker};

/// Stable identity of a spawned task. Ids increase in spawn order and are
/// never reused; ordering two `TaskId`s always reproduces spawn order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub u64);

/// FIFO-with-dedup wake queue shared by every task's waker.
#[derive(Debug, Default)]
struct ReadyInner {
    queue: VecDeque<u64>,
    queued: BTreeSet<u64>,
}

#[derive(Debug, Default)]
struct ReadyQueue {
    inner: Mutex<ReadyInner>,
}

impl ReadyQueue {
    fn push(&self, id: u64) {
        let mut inner = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if inner.queued.insert(id) {
            inner.queue.push_back(id);
        }
    }

    fn pop(&self) -> Option<u64> {
        let mut inner = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let id = inner.queue.pop_front()?;
        inner.queued.remove(&id);
        Some(id)
    }
}

/// Per-task waker: re-enqueues its task id.
struct TaskWaker {
    id: u64,
    ready: Arc<ReadyQueue>,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.ready.push(self.id);
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.ready.push(self.id);
    }
}

/// One arena slot. The future is taken out of the slot for the duration
/// of its poll so task code may re-enter the executor's shared state
/// without aliasing its own storage.
struct Task {
    future: Option<Pin<Box<dyn Future<Output = ()>>>>,
    waker: Waker,
}

/// The deterministic single-threaded executor. See the module docs.
#[derive(Default)]
pub struct Executor {
    tasks: BTreeMap<u64, Task>,
    ready: Arc<ReadyQueue>,
    next_id: u64,
    spawned_total: u64,
    polls_total: u64,
}

impl Executor {
    /// An empty executor.
    pub fn new() -> Self {
        Executor::default()
    }

    /// Add a task and mark it ready; it first runs at the next
    /// [`Executor::drain`]. Ids are handed out in spawn order.
    pub fn spawn(&mut self, future: impl Future<Output = ()> + 'static) -> TaskId {
        let id = self.next_id;
        self.next_id += 1;
        self.spawned_total += 1;
        let waker = Waker::from(Arc::new(TaskWaker { id, ready: Arc::clone(&self.ready) }));
        self.tasks.insert(id, Task { future: Some(Box::pin(future)), waker });
        self.ready.push(id);
        TaskId(id)
    }

    /// Spawn and immediately run the ready queue to quiescence — the
    /// common "this task logically starts inside the current event"
    /// pattern.
    pub fn spawn_and_drain(&mut self, future: impl Future<Output = ()> + 'static) -> TaskId {
        let id = self.spawn(future);
        self.drain();
        id
    }

    /// Poll woken tasks in FIFO wake order until no task is ready.
    /// Returns the number of polls performed.
    pub fn drain(&mut self) -> u64 {
        let mut polls = 0;
        while let Some(id) = self.ready.pop() {
            // cancelled/completed tasks may still sit in the queue; their
            // wake is a no-op, exactly like an event landing on a
            // finished request in the hand-rolled state machine
            let Some(task) = self.tasks.get_mut(&id) else { continue };
            polls += 1;
            self.polls_total += 1;
            let waker = task.waker.clone();
            let mut cx = Context::from_waker(&waker);
            // take the future out of its slot during the poll: task code
            // may call back into shared state without aliasing its slot
            let Some(mut future) = task.future.take() else { continue };
            match future.as_mut().poll(&mut cx) {
                Poll::Ready(()) => {
                    // task finished: drop the real future, free the slot
                    self.tasks.remove(&id);
                }
                Poll::Pending => {
                    if let Some(task) = self.tasks.get_mut(&id) {
                        task.future = Some(future);
                    }
                    // else: the task cancelled itself mid-poll (not a
                    // pattern this workspace uses, but dropping the
                    // future here keeps it sound)
                }
            }
        }
        polls
    }

    /// Drop a live task's future *now* — destructors run before this
    /// returns, exactly once. Returns `false` when the task already
    /// completed or was already cancelled.
    pub fn cancel(&mut self, id: TaskId) -> bool {
        self.tasks.remove(&id.0).is_some()
    }

    /// Is this task still live (spawned, not completed, not cancelled)?
    pub fn is_live(&self, id: TaskId) -> bool {
        self.tasks.contains_key(&id.0)
    }

    /// Live (incomplete, uncancelled) tasks.
    pub fn live_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Total tasks ever spawned.
    pub fn spawned_total(&self) -> u64 {
        self.spawned_total
    }

    /// Total polls performed across every drain.
    pub fn polls_total(&self) -> u64 {
        self.polls_total
    }
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("live", &self.tasks.len())
            .field("next_id", &self.next_id)
            .field("spawned_total", &self.spawned_total)
            .field("polls_total", &self.polls_total)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn tasks_run_in_spawn_order() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut exec = Executor::new();
        for i in 0..4u32 {
            let log = Rc::clone(&log);
            exec.spawn(async move {
                log.borrow_mut().push(i);
            });
        }
        exec.drain();
        assert_eq!(*log.borrow(), vec![0, 1, 2, 3]);
        assert_eq!(exec.live_tasks(), 0);
        assert_eq!(exec.spawned_total(), 4);
    }

    #[test]
    fn double_wake_polls_once() {
        let polls = Rc::new(RefCell::new(0u32));
        let mut exec = Executor::new();
        let p = Rc::clone(&polls);
        let id = exec.spawn(async move {
            *p.borrow_mut() += 1;
            std::future::pending::<()>().await;
        });
        exec.drain();
        assert_eq!(*polls.borrow(), 1);
        assert!(exec.is_live(id));
        // no wake since: drain is a no-op
        assert_eq!(exec.drain(), 0);
    }

    #[test]
    fn cancel_runs_destructors_exactly_once() {
        struct Guard(Rc<RefCell<u32>>);
        impl Drop for Guard {
            fn drop(&mut self) {
                *self.0.borrow_mut() += 1;
            }
        }
        let drops = Rc::new(RefCell::new(0u32));
        let mut exec = Executor::new();
        let g = Guard(Rc::clone(&drops));
        let id = exec.spawn(async move {
            let _held = g;
            std::future::pending::<()>().await;
        });
        exec.drain();
        assert_eq!(*drops.borrow(), 0, "live task holds its guard");
        assert!(exec.cancel(id));
        assert_eq!(*drops.borrow(), 1, "cancel drops the future immediately");
        assert!(!exec.cancel(id), "second cancel is a no-op");
        assert_eq!(*drops.borrow(), 1);
    }

    #[test]
    fn stale_ids_never_alias() {
        let mut exec = Executor::new();
        let a = exec.spawn(async {});
        exec.drain();
        let b = exec.spawn(async { std::future::pending::<()>().await });
        assert_ne!(a, b, "ids are never reused");
        assert!(!exec.is_live(a));
        assert!(!exec.cancel(a), "stale id cannot cancel a newer task");
        exec.drain();
        assert!(exec.is_live(b));
    }
}
