//! Futures that wait for a named simulation event.
//!
//! The bridge between a straight-line `async fn` and the event heap: the
//! world dispatches an engine event and calls [`EventSlots::fire`] with a
//! key; the task `await`ing [`EventSlots::wait`] on that key resumes with
//! [`Delivery::Event`]. A fault layer can instead [`EventSlots::cancel`]
//! the key, resuming the waiter with [`Delivery::Cancelled`] so it can
//! unwind (or the whole task can be dropped through
//! [`crate::Executor::cancel`]).
//!
//! Semantics chosen to mirror hand-rolled state machines exactly:
//!
//! * **fire with no waiter is a no-op** (returns `false`) — the analogue
//!   of the classic `let Some(req) = reqs.get(&id) else { return }` guard
//!   on a stale event.
//! * **one waiter per key** — keys embed unique request/connection ids,
//!   so two live waits on one key is a bug (debug-asserted).
//! * dropping an [`EventWait`] deregisters it, so a cancelled task leaves
//!   no dangling waker behind.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

/// How a wait on an event key resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// The event arrived.
    Event,
    /// The wait was cancelled (e.g. the node serving it crashed).
    Cancelled,
}

#[derive(Debug)]
struct Slot {
    result: Option<Delivery>,
    waker: Option<Waker>,
}

/// A shared waiter table keyed by an ordered event-key type. Cheap to
/// clone (a shared handle); all clones see the same table.
#[derive(Debug)]
pub struct EventSlots<K: Ord + Copy> {
    inner: Rc<RefCell<BTreeMap<K, Slot>>>,
}

impl<K: Ord + Copy> Clone for EventSlots<K> {
    fn clone(&self) -> Self {
        EventSlots { inner: Rc::clone(&self.inner) }
    }
}

impl<K: Ord + Copy> Default for EventSlots<K> {
    fn default() -> Self {
        EventSlots { inner: Rc::new(RefCell::new(BTreeMap::new())) }
    }
}

impl<K: Ord + Copy> EventSlots<K> {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register interest in `key` and return the future that resolves
    /// when it is fired or cancelled. One live waiter per key.
    pub fn wait(&self, key: K) -> EventWait<K> {
        let prev = self.inner.borrow_mut().insert(key, Slot { result: None, waker: None });
        debug_assert!(prev.is_none(), "two live waits on one event key");
        EventWait { slots: self.clone(), key, done: false }
    }

    /// Deliver `key` to its waiter. `false` (a no-op) when nobody waits —
    /// the stale-event guard of the state-machine world.
    pub fn fire(&self, key: K) -> bool {
        self.resolve(key, Delivery::Event)
    }

    /// Cancel the wait on `key`, resuming the waiter with
    /// [`Delivery::Cancelled`]. `false` when nobody waits.
    pub fn cancel(&self, key: K) -> bool {
        self.resolve(key, Delivery::Cancelled)
    }

    /// Is someone currently waiting on `key`?
    pub fn has_waiter(&self, key: K) -> bool {
        self.inner.borrow().contains_key(&key)
    }

    /// Live waiters across all keys.
    pub fn len(&self) -> usize {
        self.inner.borrow().len()
    }

    /// True when no waiter is registered.
    pub fn is_empty(&self) -> bool {
        self.inner.borrow().is_empty()
    }

    fn resolve(&self, key: K, result: Delivery) -> bool {
        let mut inner = self.inner.borrow_mut();
        let Some(slot) = inner.get_mut(&key) else { return false };
        if slot.result.is_some() {
            // already resolved, waiter not yet polled: keep the first
            return false;
        }
        slot.result = Some(result);
        let waker = slot.waker.take();
        drop(inner);
        if let Some(w) = waker {
            w.wake();
        }
        true
    }
}

/// Future returned by [`EventSlots::wait`].
#[derive(Debug)]
pub struct EventWait<K: Ord + Copy> {
    slots: EventSlots<K>,
    key: K,
    done: bool,
}

// Sound: `EventWait` holds only an `Rc` handle, a `Copy` key, and a flag.
impl<K: Ord + Copy> Unpin for EventWait<K> {}

impl<K: Ord + Copy> Future for EventWait<K> {
    type Output = Delivery;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Delivery> {
        let mut inner = self.slots.inner.borrow_mut();
        let Some(slot) = inner.get_mut(&self.key) else {
            debug_assert!(self.done, "event slot vanished under a live wait");
            return Poll::Pending;
        };
        match slot.result {
            Some(d) => {
                inner.remove(&self.key);
                drop(inner);
                self.done = true;
                Poll::Ready(d)
            }
            None => {
                slot.waker = Some(cx.waker().clone());
                Poll::Pending
            }
        }
    }
}

impl<K: Ord + Copy> Drop for EventWait<K> {
    fn drop(&mut self) {
        if !self.done {
            self.slots.inner.borrow_mut().remove(&self.key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Executor;
    use std::rc::Rc;

    #[test]
    fn fire_resumes_the_waiter() {
        let slots: EventSlots<u32> = EventSlots::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut exec = Executor::new();
        let (s, l) = (slots.clone(), Rc::clone(&log));
        exec.spawn(async move {
            let d = s.wait(7).await;
            l.borrow_mut().push(d);
        });
        exec.drain();
        assert!(slots.has_waiter(7));
        assert!(!slots.fire(99), "no waiter on 99");
        assert!(slots.fire(7));
        exec.drain();
        assert_eq!(*log.borrow(), vec![Delivery::Event]);
        assert!(slots.is_empty());
        assert!(!slots.fire(7), "slot consumed");
    }

    #[test]
    fn cancel_resumes_with_cancelled() {
        let slots: EventSlots<u32> = EventSlots::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut exec = Executor::new();
        let (s, l) = (slots.clone(), Rc::clone(&log));
        exec.spawn(async move {
            l.borrow_mut().push(s.wait(1).await);
        });
        exec.drain();
        assert!(slots.cancel(1));
        exec.drain();
        assert_eq!(*log.borrow(), vec![Delivery::Cancelled]);
    }

    #[test]
    fn dropping_a_cancelled_task_deregisters_its_wait() {
        let slots: EventSlots<u32> = EventSlots::new();
        let mut exec = Executor::new();
        let s = slots.clone();
        let id = exec.spawn(async move {
            let _ = s.wait(5).await;
        });
        exec.drain();
        assert_eq!(slots.len(), 1);
        exec.cancel(id);
        assert!(slots.is_empty(), "EventWait::drop removed the registration");
        assert!(!slots.fire(5));
    }
}
