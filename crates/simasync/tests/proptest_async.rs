//! Property tests for the simasync primitives: the determinism contracts
//! the workload ports lean on, sampled across random schedules.

use edison_simasync::{mpsc, AsyncSim, Executor};
use edison_simcore::time::SimDuration;
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Timer completion order is a total order on deadlines, stable under
    /// arbitrary permutations of spawn order: with distinct deadlines the
    /// wake sequence is exactly deadline-sorted no matter which task was
    /// spawned first.
    #[test]
    fn timer_order_is_deadline_order_whatever_the_spawn_order(
        n in 2usize..12,
        keys in proptest::collection::vec(0u64..1_000_000, 12..24),
    ) {
        // a permutation of 0..n from the random keys (stable sort keeps
        // this well-defined even on key collisions)
        let mut perm: Vec<usize> = (0..n).collect();
        perm.sort_by_key(|&i| keys[i]);

        let log = Rc::new(RefCell::new(Vec::new()));
        let mut world = AsyncSim::new();
        let timers = world.timers();
        for &label in &perm {
            let (t, l) = (timers.clone(), Rc::clone(&log));
            // distinct deadlines: 10ms, 20ms, ... keyed by label, not
            // spawn position
            let d = SimDuration::from_millis(10 * (label as u64 + 1));
            world.spawn(async move {
                t.sleep(d).await;
                l.borrow_mut().push(label);
            });
        }
        world.run();
        let want: Vec<usize> = (0..n).collect();
        prop_assert_eq!(&*log.borrow(), &want, "spawn perm {:?}", perm);
    }

    /// mpsc receive order is send order, regardless of how executor
    /// drains interleave with the sends and which cloned sender is used.
    #[test]
    fn mpsc_recv_order_is_send_order_under_any_interleaving(
        plan in proptest::collection::vec((0u64..1_000, 0u8..4), 1..30),
    ) {
        let got = Rc::new(RefCell::new(Vec::new()));
        let mut exec = Executor::new();
        let (tx, mut rx) = mpsc::<u64>();
        let g = Rc::clone(&got);
        exec.spawn(async move {
            while let Some(v) = rx.recv().await {
                g.borrow_mut().push(v);
            }
        });
        let tx2 = tx.clone();
        let mut sent = Vec::new();
        for &(value, schedule) in &plan {
            // schedule bits pick the sender and whether to drain now —
            // the interleaving the property must be blind to
            let sender = if schedule % 2 == 0 { &tx } else { &tx2 };
            sender.send(value).expect("receiver alive");
            sent.push(value);
            if schedule >= 2 {
                exec.drain();
            }
        }
        drop(tx);
        drop(tx2);
        exec.drain();
        prop_assert_eq!(&*got.borrow(), &sent);
        prop_assert_eq!(exec.live_tasks(), 0, "recv loop saw the close");
    }

    /// Every task's destructors run exactly once, whether it completes or
    /// is cancelled mid-await — and a cancel drops synchronously.
    #[test]
    fn destructors_run_exactly_once_completed_or_cancelled(
        n in 1usize..10,
        cancel_mask in 0u32..1024,
    ) {
        struct Guard(Rc<RefCell<u32>>);
        impl Drop for Guard {
            fn drop(&mut self) {
                *self.0.borrow_mut() += 1;
            }
        }

        let counters: Vec<Rc<RefCell<u32>>> =
            (0..n).map(|_| Rc::new(RefCell::new(0))).collect();
        let mut world = AsyncSim::new();
        let timers = world.timers();
        let ids: Vec<_> = counters
            .iter()
            .map(|c| {
                let (t, g) = (timers.clone(), Guard(Rc::clone(c)));
                world.spawn(async move {
                    let _held = g;
                    t.sleep(SimDuration::from_secs(1)).await;
                })
            })
            .collect();

        // park every task at its first await, then cancel the masked set
        world.executor_mut().drain();
        for (i, id) in ids.iter().enumerate() {
            if cancel_mask & (1 << i) != 0 {
                prop_assert!(world.executor_mut().cancel(*id));
                prop_assert_eq!(*counters[i].borrow(), 1, "cancel drops synchronously");
            }
        }
        let done = world.run();
        for (i, c) in counters.iter().enumerate() {
            prop_assert_eq!(*c.borrow(), 1, "task {} dropped exactly once", i);
        }
        prop_assert_eq!(done.polls_total() > 0, true);
    }
}
