//! Per-point seed derivation.
//!
//! Every sweep point gets its own seed, derived from `(root seed, stream
//! id, point index)` through a splitmix64 finaliser chain. The guarantees
//! the sweep executor relies on:
//!
//! * **Stable** — the derived seed depends only on the three inputs, never
//!   on worker count, scheduling, or completion order, so `--jobs 1` and
//!   `--jobs 8` runs are bit-identical.
//! * **Independent** — distinct `(stream, index)` pairs produce
//!   well-separated seeds (splitmix64 is a bijective avalanche mixer), so
//!   no two sweep points share a random stream the way the old shared
//!   `20160509` constant forced them to.
//! * **Reproducible in isolation** — a single point can be re-run outside
//!   its sweep by recomputing `derive_seed(root, stream, index)`; the
//!   sweep itself is not needed.
//!
//! The stream id is a human-readable string naming the sweep (experiment
//! id, scenario, workload mix); it is hashed with FNV-1a so adding a
//! scenario to one sweep never shifts the seeds of another.

/// The repo-wide root seed (the paper's submission date, kept from the
/// original hard-coded constant so headline numbers stay comparable).
pub const ROOT_SEED: u64 = 20160509;

/// The splitmix64 finaliser: a bijective 64-bit avalanche mix (Steele et
/// al., "Fast splittable pseudorandom number generators", OOPSLA 2014).
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over the stream id bytes: stable, dependency-free, good enough
/// as a pre-mix for the splitmix avalanche that follows.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Derive the seed for point `index` of the sweep named `stream`, rooted
/// at `root`. See the module docs for the properties this provides.
pub fn derive_seed(root: u64, stream: &str, index: u64) -> u64 {
    let mixed = splitmix64(root ^ fnv1a(stream));
    splitmix64(mixed ^ splitmix64(index))
}

/// [`derive_seed`] with a `usize` point index — the executor's natural
/// index type. Saturates (indices beyond `u64::MAX` cannot occur on any
/// supported target).
pub fn derive_seed_at(root: u64, stream: &str, index: usize) -> u64 {
    derive_seed(root, stream, u64::try_from(index).unwrap_or(u64::MAX))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_inputs() {
        assert_eq!(derive_seed(1, "web:a", 0), derive_seed(1, "web:a", 0));
        assert_eq!(derive_seed(ROOT_SEED, "x", 7), derive_seed(ROOT_SEED, "x", 7));
    }

    #[test]
    fn inputs_all_matter() {
        let base = derive_seed(ROOT_SEED, "web:24 Edison", 3);
        assert_ne!(base, derive_seed(ROOT_SEED + 1, "web:24 Edison", 3), "root ignored");
        assert_ne!(base, derive_seed(ROOT_SEED, "web:2 Dell", 3), "stream ignored");
        assert_ne!(base, derive_seed(ROOT_SEED, "web:24 Edison", 4), "index ignored");
    }

    #[test]
    fn points_of_one_sweep_are_all_distinct() {
        let mut seeds: Vec<u64> = (0..256).map(|i| derive_seed(ROOT_SEED, "sweep", i)).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 256);
    }

    #[test]
    fn low_bits_avalanche() {
        // consecutive indices must not produce near-identical seeds; check
        // the low 32 bits look independent (no shared run of structure)
        let a = derive_seed(ROOT_SEED, "s", 0);
        let b = derive_seed(ROOT_SEED, "s", 1);
        let diff = (a ^ b).count_ones();
        assert!((8..=56).contains(&diff), "xor popcount {diff} suggests weak mixing");
    }
}
