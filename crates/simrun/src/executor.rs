//! The bounded, deterministic, fault-isolating sweep executor.
//!
//! Experiments above the kernel are grids of *independent* simulation
//! points (concurrency sweeps, the Table 8 job × cluster matrix). The
//! executor fans a slice of points over a bounded worker pool and
//! guarantees:
//!
//! * **Bounded parallelism** — at most [`Executor::jobs`] points run at
//!   once (default: available cores; `--jobs N` / `EDISON_REPRO_JOBS`
//!   override), instead of the old one-unbounded-thread-per-point fan-out.
//! * **Deterministic ordering** — results are returned in *input* order
//!   regardless of completion order or worker count, so a sweep's output
//!   is bit-identical for `jobs=1` and `jobs=8`.
//! * **Fault isolation** — a panicking point is caught with
//!   `catch_unwind` and surfaces as a typed failure for *that point only*;
//!   every other point still runs to completion.
//!
//! [`Executor::run`] gives the raw per-point results;
//! [`Executor::sweep`] adds the ergonomics the experiment layer wants:
//! per-point outcome counters into the [`Telemetry`] sink and conversion
//! of the first crashed point into [`RunError::PointFailed`].

use crate::error::RunError;
use edison_simtel::{labels, Telemetry};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Environment variable consulted by [`Executor::from_env`] for the
/// worker-pool width (same meaning as `repro --jobs N`).
pub const JOBS_ENV: &str = "EDISON_REPRO_JOBS";

/// A single point's caught panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PointPanic {
    /// Input-order index of the crashed point.
    pub index: usize,
    /// The panic payload, rendered as text.
    pub cause: String,
}

/// The sweep executor: a worker pool of fixed width. Cheap to construct
/// and `Copy`-sized; threads live only for the duration of one `run`.
#[derive(Debug, Clone, Copy)]
pub struct Executor {
    jobs: usize,
}

impl Executor {
    /// An executor running at most `jobs` points concurrently (clamped to
    /// at least 1).
    pub fn new(jobs: usize) -> Self {
        Executor { jobs: jobs.max(1) }
    }

    /// A single-worker executor: points run one at a time, in order.
    pub fn serial() -> Self {
        Executor::new(1)
    }

    /// Pool width from `EDISON_REPRO_JOBS` if set to a positive integer,
    /// else the machine's available parallelism. Host-side configuration
    /// only — the width never influences simulation results (see the
    /// determinism guarantee on [`Executor::run`]).
    pub fn from_env() -> Self {
        if let Ok(v) = std::env::var(JOBS_ENV) {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n >= 1 {
                    return Executor::new(n);
                }
            }
        }
        Executor::new(std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
    }

    /// The worker-pool width.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Run `f` over every point, at most [`Self::jobs`] at a time, and
    /// return per-point results **in input order**. A panicking point
    /// yields `Err(PointPanic)` in its slot; all other points still run.
    ///
    /// `f` must be a pure function of `(index, point)` for the
    /// determinism guarantee to mean anything — in this workspace that
    /// holds because every simulation is a pure function of its config
    /// (which embeds a derived seed, see [`crate::derive_seed`]).
    pub fn run<I, T, F>(&self, points: &[I], f: F) -> Vec<Result<T, PointPanic>>
    where
        I: Sync,
        T: Send,
        F: Fn(usize, &I) -> T + Sync,
    {
        let n = points.len();
        if n == 0 {
            return Vec::new();
        }
        let workers = self.jobs.min(n);
        let next = AtomicUsize::new(0);
        let mut slots: Vec<Option<Result<T, PointPanic>>> = (0..n).map(|_| None).collect();

        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut mine: Vec<(usize, Result<T, PointPanic>)> = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            let out = catch_unwind(AssertUnwindSafe(|| f(i, &points[i])))
                                .map_err(|payload| PointPanic { index: i, cause: panic_text(payload.as_ref()) });
                            mine.push((i, out));
                        }
                        mine
                    })
                })
                .collect();
            for h in handles {
                // join() only fails if a worker panicked outside
                // catch_unwind; any points it claimed are synthesised as
                // failures below rather than tearing down the sweep.
                if let Ok(mine) = h.join() {
                    for (i, r) in mine {
                        slots[i] = Some(r);
                    }
                }
            }
        });

        slots
            .into_iter()
            .enumerate()
            .map(|(i, s)| {
                s.unwrap_or_else(|| Err(PointPanic { index: i, cause: "worker thread lost".into() }))
            })
            .collect()
    }

    /// [`Self::run`], plus the experiment-layer conveniences: per-point
    /// outcome counters recorded into `tel` (metric
    /// `simrun_points_total{sweep,outcome}`), and conversion of failures
    /// into [`RunError::PointFailed`] naming the first crashed point via
    /// `label`. The whole sweep still executes before the error returns,
    /// so one bad point never cancels its siblings.
    pub fn sweep<I, T, F, L>(
        &self,
        name: &str,
        points: &[I],
        tel: &mut Telemetry,
        label: L,
        f: F,
    ) -> Result<Vec<T>, RunError>
    where
        I: Sync,
        T: Send,
        F: Fn(usize, &I) -> T + Sync,
        L: Fn(usize, &I) -> String,
    {
        let results = self.run(points, f);
        let mut out = Vec::with_capacity(results.len());
        let mut first_failure: Option<RunError> = None;
        let mut ok: u64 = 0;
        let mut panicked: u64 = 0;
        for (i, r) in results.into_iter().enumerate() {
            match r {
                Ok(v) => {
                    ok += 1;
                    out.push(v);
                }
                Err(p) => {
                    panicked += 1;
                    if first_failure.is_none() {
                        first_failure = Some(RunError::PointFailed {
                            point: format!("{name}/{}", label(i, &points[i])),
                            cause: p.cause,
                        });
                    }
                }
            }
        }
        tel.help("simrun_points_total", "Sweep points executed, by sweep name and outcome");
        if ok > 0 {
            tel.counter_add("simrun_points_total", labels(&[("sweep", name), ("outcome", "ok")]), ok);
        }
        if panicked > 0 {
            tel.counter_add("simrun_points_total", labels(&[("sweep", name), ("outcome", "panicked")]), panicked);
        }
        match first_failure {
            Some(e) => Err(e),
            None => Ok(out),
        }
    }
}

impl Default for Executor {
    /// Same as [`Executor::from_env`].
    fn default() -> Self {
        Executor::from_env()
    }
}

/// Render a panic payload as text: the common `&str` / `String` payloads
/// verbatim, anything else as a placeholder.
fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_input_order_for_any_width() {
        let points: Vec<usize> = (0..64).collect();
        for jobs in [1, 2, 8, 64] {
            let exec = Executor::new(jobs);
            let got = exec.run(&points, |i, &p| {
                assert_eq!(i, p);
                p * p
            });
            let vals: Vec<usize> = got.into_iter().map(|r| r.expect("ok")).collect();
            let want: Vec<usize> = points.iter().map(|p| p * p).collect();
            assert_eq!(vals, want, "jobs={jobs}");
        }
    }

    #[test]
    fn width_is_clamped_and_reported() {
        assert_eq!(Executor::new(0).jobs(), 1);
        assert_eq!(Executor::serial().jobs(), 1);
        assert_eq!(Executor::new(5).jobs(), 5);
    }

    #[test]
    fn panicking_point_is_isolated() {
        let points: Vec<u32> = (0..8).collect();
        let exec = Executor::new(4);
        let got = exec.run(&points, |_, &p| {
            if p == 3 {
                panic!("deliberate failure at {p}");
            }
            p + 100
        });
        for (i, r) in got.iter().enumerate() {
            if i == 3 {
                let e = r.as_ref().expect_err("point 3 must fail");
                assert_eq!(e.index, 3);
                assert!(e.cause.contains("deliberate failure at 3"), "cause: {}", e.cause);
            } else {
                assert_eq!(*r.as_ref().expect("other points complete"), i as u32 + 100);
            }
        }
    }

    #[test]
    fn sweep_reports_first_failure_and_counts_outcomes() {
        let points: Vec<u32> = (0..6).collect();
        let exec = Executor::new(3);
        let mut tel = Telemetry::on();
        let err = exec
            .sweep("demo", &points, &mut tel, |i, _| format!("p{i}"), |_, &p| {
                if p == 2 || p == 4 {
                    panic!("boom {p}");
                }
                p
            })
            .expect_err("sweep must fail");
        match err {
            RunError::PointFailed { point, cause } => {
                assert_eq!(point, "demo/p2");
                assert!(cause.contains("boom 2"));
            }
            other => panic!("wrong error {other:?}"),
        }
        let prom = tel.prometheus_text();
        assert!(prom.contains("simrun_points_total"), "{prom}");
        assert!(prom.contains("outcome=\"ok\"") && prom.contains("4"), "{prom}");
        assert!(prom.contains("outcome=\"panicked\"") && prom.contains("2"), "{prom}");
    }

    #[test]
    fn sweep_ok_path_returns_all_points() {
        let points: Vec<u32> = (0..5).collect();
        let got = Executor::new(2)
            .sweep("ok", &points, &mut Telemetry::off(), |i, _| format!("{i}"), |_, &p| p * 2)
            .expect("all points fine");
        assert_eq!(got, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn empty_sweep_is_fine() {
        let points: Vec<u32> = Vec::new();
        let got = Executor::new(4).run(&points, |_, &p| p);
        assert!(got.is_empty());
    }

    #[test]
    fn from_env_honours_the_variable() {
        std::env::set_var(JOBS_ENV, "3");
        assert_eq!(Executor::from_env().jobs(), 3);
        std::env::set_var(JOBS_ENV, "not-a-number");
        assert!(Executor::from_env().jobs() >= 1);
        std::env::remove_var(JOBS_ENV);
        assert!(Executor::from_env().jobs() >= 1);
    }
}
