//! The structured error taxonomy of the run layer.
//!
//! Two levels, mirroring the two layers that can fail:
//!
//! * [`SimError`] — a simulation layer (`web`, `mapreduce`, `microbench`)
//!   could not build or interpret a requested configuration. These are
//!   *input* problems: the simulation never ran.
//! * [`RunError`] — the orchestration layer failed: a sweep point panicked
//!   mid-simulation ([`RunError::PointFailed`]), a simulation layer
//!   rejected its input ([`RunError::Sim`]), or an experiment id did not
//!   resolve ([`RunError::UnknownExperiment`]).
//!
//! The `repro` binary maps each variant to a distinct exit code via
//! [`RunError::exit_code`], so scripts can tell a crashed point (retryable
//! in isolation) from a misconfiguration (not retryable).

use std::fmt;

/// A simulation layer rejected its input before (or instead of) running.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A requested configuration row does not exist or is inconsistent
    /// (e.g. a Table 6 scale that the paper never built).
    Config(String),
    /// A job name did not resolve to a registered job profile.
    UnknownJob(String),
    /// A result set was empty or missing where data was required to
    /// render a report (e.g. every sweep point excluded by error rate).
    Data(String),
    /// An **injected** fault left the simulated system unable to finish
    /// (e.g. every replica of a needed HDFS block was lost, or the whole
    /// web tier crashed with no restart scheduled).
    ///
    /// This is the *fault domain*: the simulation itself worked — it
    /// faithfully played a plan the system could not survive. A fault
    /// that was injected and **recovered from** is not an error at all
    /// (the run returns `Ok` with degraded metrics); only an
    /// *unrecovered* fault surfaces here, with its own exit code so
    /// scripts never confuse it with a crashed sweep point (exit 3) or a
    /// rejected configuration (exit 4).
    FaultUnrecovered(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            SimError::UnknownJob(name) => write!(f, "unknown job '{name}'"),
            SimError::Data(msg) => write!(f, "missing result data: {msg}"),
            SimError::FaultUnrecovered(msg) => {
                write!(f, "injected fault was not recoverable: {msg}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// An orchestration-layer failure. Carries enough structure for the CLI
/// to render a readable message and pick a distinct exit code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// One sweep point panicked. The executor isolates the panic
    /// ([`crate::Executor`]), so every *other* point of the sweep still
    /// completed; `point` names the crashed one and `cause` carries its
    /// panic payload.
    PointFailed {
        /// Human-readable point identity, e.g. `fig04_07/24 Edison/conc=512`.
        point: String,
        /// The panic payload (message) of the crashed point.
        cause: String,
    },
    /// A simulation layer rejected the run's configuration.
    Sim(SimError),
    /// An experiment id did not resolve in the registry.
    UnknownExperiment(String),
}

impl RunError {
    /// The process exit code the `repro` binary uses for this failure:
    /// `3` for a crashed sweep point, `4` for a simulation-layer
    /// rejection, `5` for an injected fault the system could not recover
    /// from ([`SimError::FaultUnrecovered`] — never code 3, which is
    /// reserved for genuine simulation failures), `2` for an
    /// unresolvable experiment id (the same code as other CLI usage
    /// errors).
    pub fn exit_code(&self) -> i32 {
        match self {
            RunError::PointFailed { .. } => 3,
            RunError::Sim(SimError::FaultUnrecovered(_)) => 5,
            RunError::Sim(_) => 4,
            RunError::UnknownExperiment(_) => 2,
        }
    }
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::PointFailed { point, cause } => {
                write!(f, "sweep point '{point}' panicked: {cause} (remaining points completed)")
            }
            RunError::Sim(e) => write!(f, "{e}"),
            RunError::UnknownExperiment(id) => write!(f, "unknown experiment '{id}'"),
        }
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RunError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for RunError {
    fn from(e: SimError) -> Self {
        RunError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_readable() {
        let e = RunError::PointFailed { point: "table8/pi@edison-35".into(), cause: "boom".into() };
        let msg = format!("{e}");
        assert!(msg.contains("table8/pi@edison-35"));
        assert!(msg.contains("boom"));
        assert!(msg.contains("remaining points completed"));
    }

    #[test]
    fn exit_codes_are_distinct_per_class() {
        assert_eq!(RunError::PointFailed { point: "p".into(), cause: "c".into() }.exit_code(), 3);
        assert_eq!(RunError::Sim(SimError::Config("x".into())).exit_code(), 4);
        assert_eq!(RunError::UnknownExperiment("nope".into()).exit_code(), 2);
    }

    #[test]
    fn unrecovered_fault_gets_its_own_exit_code() {
        // An injected-but-unrecovered fault must be distinguishable from a
        // crashed point (3) and a rejected configuration (4): a recovered
        // fault never errors at all, and an unrecovered one exits 5.
        let e = RunError::Sim(SimError::FaultUnrecovered("all replicas of block 7 lost".into()));
        assert_eq!(e.exit_code(), 5);
        assert_ne!(e.exit_code(), RunError::PointFailed { point: "p".into(), cause: "c".into() }.exit_code());
        assert!(format!("{e}").contains("not recoverable"));
    }

    #[test]
    fn sim_errors_convert() {
        let r: RunError = SimError::UnknownJob("tera".into()).into();
        assert!(matches!(r, RunError::Sim(SimError::UnknownJob(_))));
        assert!(format!("{r}").contains("tera"));
    }
}
