//! Input-ordered merging of per-point engine profiles.
//!
//! A sweep produces one [`EngineProfile`] per point; the experiment wants
//! one per-sweep breakdown. [`merge_profiles`] folds them **in input
//! order** — the same order [`Executor::run`](crate::Executor::run)
//! returns results regardless of worker count — so the merged profile is
//! bit-identical for `--jobs 1` and `--jobs 8`, the same determinism
//! contract the rest of the run layer keeps.

use edison_simcore::EngineProfile;

/// Fold per-point profiles into one, in iteration order. Counts add,
/// high-water marks take the max, heap-depth step tracks interleave by
/// time (stable on ties, so the fold order — input order — decides).
pub fn merge_profiles<I>(profiles: I) -> EngineProfile
where
    I: IntoIterator<Item = EngineProfile>,
{
    let mut merged = EngineProfile::default();
    for p in profiles {
        merged.merge(&p);
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Executor;
    use edison_simcore::{Ctx, KindProfiler, Model, NoopObserver, SimDuration, SimTime, Simulation};

    struct Chain {
        left: u32,
    }
    impl Model for Chain {
        type Event = ();
        fn handle(&mut self, _now: SimTime, _ev: (), ctx: &mut Ctx<()>) {
            if self.left > 0 {
                self.left -= 1;
                ctx.schedule_in(SimDuration::from_millis(1), ());
            }
        }
    }

    fn point_profile(len: u32) -> EngineProfile {
        let mut sim = Simulation::new(Chain { left: len });
        sim.schedule_at(SimTime::ZERO, ());
        let mut prof = KindProfiler::new(|_: &()| "tick");
        sim.run_profiled(&mut NoopObserver, &mut prof);
        prof.finish(&sim)
    }

    #[test]
    fn merged_profile_is_identical_across_worker_counts() {
        let points: Vec<u32> = (1..40).collect();
        let merge_at = |jobs: usize| {
            let results = Executor::new(jobs).run(&points, |_, &len| point_profile(len));
            merge_profiles(results.into_iter().map(|r| r.expect("no panics")))
        };
        let serial = merge_at(1);
        let wide = merge_at(8);
        assert_eq!(serial, wide);
        assert_eq!(serial.events(), (1..40u64).map(|n| n + 1).sum::<u64>());
    }

    #[test]
    fn empty_merge_is_default() {
        assert_eq!(merge_profiles(std::iter::empty()), EngineProfile::default());
    }
}
