//! # edison-simrun
//!
//! The deterministic, fault-isolating parallel run layer.
//!
//! The paper's evaluation is a grid of independent simulation points —
//! concurrency sweeps for Figures 4–11, the 6-job × 6-cluster-size
//! Table 8 matrix — and every layer above the kernel used to hand-roll
//! its own thread fan-out, share one magic seed, and abort the whole
//! sweep when any point panicked. This crate promotes that ad-hoc code
//! into a real subsystem with three parts:
//!
//! * [`Executor`] — a bounded worker-pool sweep executor with
//!   deterministic result ordering (input order, regardless of worker
//!   count or completion order) and `catch_unwind` panic isolation.
//!   Configure the width with `repro --jobs N` or the
//!   [`JOBS_ENV`] environment variable; default is available cores.
//! * [`derive_seed`] — splitmix64-based per-point seed derivation from
//!   `(root, stream, index)`, replacing the one shared constant so every
//!   sweep point is independently reproducible.
//! * [`RunError`] / [`SimError`] — the structured error taxonomy threaded
//!   through `web`, `mapreduce` and `core`; a crashed point becomes
//!   [`RunError::PointFailed`] instead of tearing down the process, and
//!   the `repro` binary maps each class to a distinct exit code.
//!
//! Per-point outcome counters flow into the existing `simtel` sink as
//! `simrun_points_total{sweep,outcome}` (see [`Executor::sweep`]), and
//! per-point engine profiles fold input-ordered via [`merge_profiles`] so
//! merged simprof output is independent of `--jobs`.

pub mod error;
pub mod executor;
pub mod profile;
pub mod seed;

pub use error::{RunError, SimError};
pub use executor::{Executor, PointPanic, JOBS_ENV};
pub use profile::merge_profiles;
pub use seed::{derive_seed, derive_seed_at, ROOT_SEED};
