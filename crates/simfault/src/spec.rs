//! The line-based text form of a [`FaultPlan`], loaded by
//! `repro --fault-plan <file>`.
//!
//! ```text
//! # simfault plan — one fault per line
//! seed 42
//! fault 10s    0  crash
//! fault 15s    0  restart
//! fault 8.5s   2  nic loss=0.05 lat=2.0
//! fault 20s    2  nic-restore
//! fault 5s     1  disk-slow factor=4
//! fault 30s    1  disk-restore
//! fault 5s     3  cpu-throttle factor=3
//! fault 30s    3  cpu-restore
//! fault 12s    4  cache-cold
//! ```
//!
//! Times accept an `s` suffix (decimal seconds) or a bare integer
//! (nanoseconds). [`FaultPlan::to_spec`] emits nanoseconds so a
//! parse → serialize → parse round trip is exact; `#` starts a comment and
//! blank lines are ignored.

use crate::plan::{FaultKind, FaultPlan, FaultPlanError};
use edison_simcore::time::SimTime;
use std::fmt;

fn parse_err(line: usize, msg: impl Into<String>) -> FaultPlanError {
    FaultPlanError::Parse { line, msg: msg.into() }
}

fn parse_time(tok: &str, line: usize) -> Result<SimTime, FaultPlanError> {
    if let Some(secs) = tok.strip_suffix('s') {
        let v: f64 = secs
            .parse()
            .map_err(|_| parse_err(line, format!("bad time '{tok}' (want e.g. '10s' or '8.5s')")))?;
        if !v.is_finite() || v < 0.0 {
            return Err(parse_err(line, format!("time '{tok}' must be finite and ≥ 0")));
        }
        Ok(SimTime::from_secs_f64(v))
    } else {
        let ns: u64 = tok
            .parse()
            .map_err(|_| parse_err(line, format!("bad time '{tok}' (bare values are integer nanoseconds)")))?;
        Ok(SimTime(ns))
    }
}

fn parse_param(tok: &str, key: &str, line: usize) -> Result<f64, FaultPlanError> {
    let Some(v) = tok.strip_prefix(key).and_then(|r| r.strip_prefix('=')) else {
        return Err(parse_err(line, format!("expected '{key}=<value>', got '{tok}'")));
    };
    v.parse()
        .map_err(|_| parse_err(line, format!("bad value in '{tok}'")))
}

impl FaultPlan {
    /// Parse the text spec (see the module docs for the grammar).
    pub fn parse(text: &str) -> Result<FaultPlan, FaultPlanError> {
        let mut plan = FaultPlan::new();
        for (i, raw) in text.lines().enumerate() {
            let line = i + 1;
            let content = raw.split('#').next().unwrap_or("").trim();
            if content.is_empty() {
                continue;
            }
            let toks: Vec<&str> = content.split_whitespace().collect();
            match toks[0] {
                "seed" => {
                    let [_, v] = toks[..] else {
                        return Err(parse_err(line, "usage: seed <u64>"));
                    };
                    let seed: u64 =
                        v.parse().map_err(|_| parse_err(line, format!("bad seed '{v}'")))?;
                    plan = plan.with_seed(seed);
                }
                "fault" => {
                    if toks.len() < 4 {
                        return Err(parse_err(line, "usage: fault <time> <node> <kind> [k=v ...]"));
                    }
                    let at = parse_time(toks[1], line)?;
                    let node: usize = toks[2]
                        .parse()
                        .map_err(|_| parse_err(line, format!("bad node index '{}'", toks[2])))?;
                    let kind = match toks[3] {
                        "crash" => FaultKind::NodeCrash,
                        "restart" => FaultKind::NodeRestart,
                        "nic" => {
                            if toks.len() != 6 {
                                return Err(parse_err(line, "usage: fault <t> <n> nic loss=<p> lat=<m>"));
                            }
                            FaultKind::NicDegrade {
                                loss: parse_param(toks[4], "loss", line)?,
                                latency_mult: parse_param(toks[5], "lat", line)?,
                            }
                        }
                        "nic-restore" => FaultKind::NicRestore,
                        "disk-slow" => {
                            if toks.len() != 5 {
                                return Err(parse_err(line, "usage: fault <t> <n> disk-slow factor=<f>"));
                            }
                            FaultKind::DiskSlow { factor: parse_param(toks[4], "factor", line)? }
                        }
                        "disk-restore" => FaultKind::DiskRestore,
                        "cpu-throttle" => {
                            if toks.len() != 5 {
                                return Err(parse_err(line, "usage: fault <t> <n> cpu-throttle factor=<f>"));
                            }
                            FaultKind::CpuThrottle { factor: parse_param(toks[4], "factor", line)? }
                        }
                        "cpu-restore" => FaultKind::CpuRestore,
                        "cache-cold" => FaultKind::CacheColdRestart,
                        other => {
                            return Err(parse_err(line, format!("unknown fault kind '{other}'")));
                        }
                    };
                    let simple = matches!(
                        kind,
                        FaultKind::NodeCrash
                            | FaultKind::NodeRestart
                            | FaultKind::NicRestore
                            | FaultKind::DiskRestore
                            | FaultKind::CpuRestore
                            | FaultKind::CacheColdRestart
                    );
                    if simple && toks.len() != 4 {
                        return Err(parse_err(
                            line,
                            format!("'{}' takes no parameters", toks[3]),
                        ));
                    }
                    plan = plan.push(at, node, kind);
                }
                other => {
                    return Err(parse_err(
                        line,
                        format!("unknown directive '{other}' (want 'seed' or 'fault')"),
                    ));
                }
            }
        }
        Ok(plan)
    }

    /// Emit the canonical text spec (nanosecond times, exact round trip).
    pub fn to_spec(&self) -> String {
        format!("{self}")
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "# simfault plan — fault <time_ns> <node> <kind> [k=v ...]")?;
        writeln!(f, "seed {}", self.seed_root())?;
        for fault in self.faults() {
            write!(f, "fault {} {} {}", fault.at.0, fault.node, fault.kind.name())?;
            match fault.kind {
                FaultKind::NicDegrade { loss, latency_mult } => {
                    write!(f, " loss={loss} lat={latency_mult}")?;
                }
                FaultKind::DiskSlow { factor } | FaultKind::CpuThrottle { factor } => {
                    write!(f, " factor={factor}")?;
                }
                _ => {}
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edison_simcore::time::SimDuration;

    #[test]
    fn parses_the_module_doc_example() {
        let text = "\
# comment line
seed 42
fault 10s    0  crash
fault 15s    0  restart
fault 8.5s   2  nic loss=0.05 lat=2.0
fault 20s    2  nic-restore
fault 5s     1  disk-slow factor=4
fault 30s    1  disk-restore
fault 5s     3  cpu-throttle factor=3
fault 30s    3  cpu-restore
fault 12s    4  cache-cold   # trailing comment
";
        let plan = FaultPlan::parse(text).expect("parses");
        assert_eq!(plan.seed_root(), 42);
        assert_eq!(plan.len(), 9);
        assert_eq!(plan.faults()[0].at, SimTime::from_secs(10));
        assert_eq!(plan.faults()[2].kind, FaultKind::NicDegrade { loss: 0.05, latency_mult: 2.0 });
        assert_eq!(plan.faults()[8].kind, FaultKind::CacheColdRestart);
        assert!(plan.validate(5).is_ok());
    }

    #[test]
    fn round_trip_is_exact() {
        let plan = FaultPlan::new()
            .with_seed(7)
            .crash_restart(0, SimTime::from_secs_f64(10.123456789), SimDuration::from_millis(1500))
            .nic_degrade(2, SimTime::from_secs(8), 0.05, 2.0)
            .disk_slow(1, SimTime::from_secs(5), 4.0)
            .cpu_throttle(3, SimTime::from_secs(5), 3.0)
            .cache_cold_restart(4, SimTime::from_secs(12));
        let text = plan.to_spec();
        let back = FaultPlan::parse(&text).expect("round trip parses");
        assert_eq!(plan, back);
        assert_eq!(text, back.to_spec());
    }

    #[test]
    fn rejects_garbage_with_line_numbers() {
        let err = FaultPlan::parse("seed 1\nfault ten 0 crash\n").expect_err("bad time");
        assert_eq!(err, FaultPlanError::Parse { line: 2, msg: "bad time 'ten' (bare values are integer nanoseconds)".into() });
        assert!(FaultPlan::parse("bogus 1 2 3\n").is_err());
        assert!(FaultPlan::parse("fault 1s 0 melt\n").is_err());
        assert!(FaultPlan::parse("fault 1s 0 nic loss=0.1\n").is_err());
        assert!(FaultPlan::parse("fault 1s 0 crash extra\n").is_err());
        assert!(FaultPlan::parse("fault -1s 0 crash\n").is_err());
    }

    #[test]
    fn empty_and_comment_only_specs_parse_to_empty_plan() {
        let plan = FaultPlan::parse("# nothing here\n\n").expect("parses");
        assert!(plan.is_empty());
    }
}
