//! The line-based text form of a [`FaultPlan`], loaded by
//! `repro --fault-plan <file>`.
//!
//! ```text
//! # simfault plan — one fault per line
//! seed 42
//! fault 10s    0  crash
//! fault 15s    0  restart
//! fault 8.5s   2  nic loss=0.05 lat=2.0
//! fault 20s    2  nic-restore
//! fault 5s     1  disk-slow factor=4
//! fault 30s    1  disk-restore
//! fault 5s     3  cpu-throttle factor=3
//! fault 30s    3  cpu-restore
//! fault 12s    4  cache-cold
//! ```
//!
//! Times accept an `s` suffix (decimal seconds) or a bare integer
//! (nanoseconds). [`FaultPlan::to_spec`] emits nanoseconds so a
//! parse → serialize → parse round trip is exact; `#` starts a comment and
//! blank lines are ignored.

use crate::plan::{FaultKind, FaultPlan, FaultPlanError};
use edison_simcore::time::SimTime;
use std::fmt;

/// One whitespace-delimited token with its 1-based character column in
/// the raw line — the context every parse error reports.
#[derive(Debug, Clone, Copy)]
struct Tok<'a> {
    col: usize,
    text: &'a str,
}

impl Tok<'_> {
    /// A parse error anchored at this token.
    fn err(&self, line: usize, msg: impl Into<String>) -> FaultPlanError {
        FaultPlanError::Parse { line, col: self.col, token: self.text.to_string(), msg: msg.into() }
    }
}

/// Split one raw line into tokens with columns, dropping `#` comments.
/// Columns count characters (not bytes), 1-based, in the raw line.
fn tokenize(raw: &str) -> Vec<Tok<'_>> {
    let content = raw.split('#').next().unwrap_or("");
    let mut toks = Vec::new();
    let mut col = 0usize;
    let mut start: Option<(usize, usize)> = None; // (col, byte offset)
    for (byte, ch) in content.char_indices() {
        col += 1;
        if ch.is_whitespace() {
            if let Some((c0, b0)) = start.take() {
                toks.push(Tok { col: c0, text: &content[b0..byte] });
            }
        } else if start.is_none() {
            start = Some((col, byte));
        }
    }
    if let Some((c0, b0)) = start {
        toks.push(Tok { col: c0, text: &content[b0..] });
    }
    toks
}

fn parse_time(tok: Tok<'_>, line: usize) -> Result<SimTime, FaultPlanError> {
    let text = tok.text;
    if let Some(secs) = text.strip_suffix('s') {
        let v: f64 = secs
            .parse()
            .map_err(|_| tok.err(line, format!("bad time '{text}' (want e.g. '10s' or '8.5s')")))?;
        if !v.is_finite() || v < 0.0 {
            return Err(tok.err(line, format!("time '{text}' must be finite and ≥ 0")));
        }
        Ok(SimTime::from_secs_f64(v))
    } else {
        let ns: u64 = text
            .parse()
            .map_err(|_| tok.err(line, format!("bad time '{text}' (bare values are integer nanoseconds)")))?;
        Ok(SimTime(ns))
    }
}

fn parse_param(tok: Tok<'_>, key: &str, line: usize) -> Result<f64, FaultPlanError> {
    let Some(v) = tok.text.strip_prefix(key).and_then(|r| r.strip_prefix('=')) else {
        return Err(tok.err(line, format!("expected '{key}=<value>', got '{}'", tok.text)));
    };
    v.parse().map_err(|_| tok.err(line, format!("bad value in '{}'", tok.text)))
}

impl FaultPlan {
    /// Parse the text spec (see the module docs for the grammar). Errors
    /// carry the 1-based line, column, and offending token.
    pub fn parse(text: &str) -> Result<FaultPlan, FaultPlanError> {
        let mut plan = FaultPlan::new();
        for (i, raw) in text.lines().enumerate() {
            let line = i + 1;
            let toks = tokenize(raw);
            let Some(&head) = toks.first() else {
                continue;
            };
            match head.text {
                "seed" => {
                    let [_, v] = toks[..] else {
                        return Err(head.err(line, "usage: seed <u64>"));
                    };
                    let seed: u64 =
                        v.text.parse().map_err(|_| v.err(line, format!("bad seed '{}'", v.text)))?;
                    plan = plan.with_seed(seed);
                }
                "fault" => {
                    if toks.len() < 4 {
                        return Err(head.err(line, "usage: fault <time> <node> <kind> [k=v ...]"));
                    }
                    let at = parse_time(toks[1], line)?;
                    let node: usize = toks[2]
                        .text
                        .parse()
                        .map_err(|_| toks[2].err(line, format!("bad node index '{}'", toks[2].text)))?;
                    let kind_tok = toks[3];
                    let kind = match kind_tok.text {
                        "crash" => FaultKind::NodeCrash,
                        "restart" => FaultKind::NodeRestart,
                        "nic" => {
                            if toks.len() != 6 {
                                return Err(kind_tok.err(line, "usage: fault <t> <n> nic loss=<p> lat=<m>"));
                            }
                            FaultKind::NicDegrade {
                                loss: parse_param(toks[4], "loss", line)?,
                                latency_mult: parse_param(toks[5], "lat", line)?,
                            }
                        }
                        "nic-restore" => FaultKind::NicRestore,
                        "disk-slow" => {
                            if toks.len() != 5 {
                                return Err(kind_tok.err(line, "usage: fault <t> <n> disk-slow factor=<f>"));
                            }
                            FaultKind::DiskSlow { factor: parse_param(toks[4], "factor", line)? }
                        }
                        "disk-restore" => FaultKind::DiskRestore,
                        "cpu-throttle" => {
                            if toks.len() != 5 {
                                return Err(kind_tok.err(line, "usage: fault <t> <n> cpu-throttle factor=<f>"));
                            }
                            FaultKind::CpuThrottle { factor: parse_param(toks[4], "factor", line)? }
                        }
                        "cpu-restore" => FaultKind::CpuRestore,
                        "cache-cold" => FaultKind::CacheColdRestart,
                        other => {
                            return Err(kind_tok.err(line, format!("unknown fault kind '{other}'")));
                        }
                    };
                    let simple = matches!(
                        kind,
                        FaultKind::NodeCrash
                            | FaultKind::NodeRestart
                            | FaultKind::NicRestore
                            | FaultKind::DiskRestore
                            | FaultKind::CpuRestore
                            | FaultKind::CacheColdRestart
                    );
                    if simple && toks.len() != 4 {
                        return Err(toks[4].err(line, format!("'{}' takes no parameters", kind_tok.text)));
                    }
                    plan = plan.push(at, node, kind);
                }
                other => {
                    return Err(head.err(
                        line,
                        format!("unknown directive '{other}' (want 'seed' or 'fault')"),
                    ));
                }
            }
        }
        Ok(plan)
    }

    /// Emit the canonical text spec (nanosecond times, exact round trip).
    pub fn to_spec(&self) -> String {
        format!("{self}")
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "# simfault plan — fault <time_ns> <node> <kind> [k=v ...]")?;
        writeln!(f, "seed {}", self.seed_root())?;
        for fault in self.faults() {
            write!(f, "fault {} {} {}", fault.at.0, fault.node, fault.kind.name())?;
            match fault.kind {
                FaultKind::NicDegrade { loss, latency_mult } => {
                    write!(f, " loss={loss} lat={latency_mult}")?;
                }
                FaultKind::DiskSlow { factor } | FaultKind::CpuThrottle { factor } => {
                    write!(f, " factor={factor}")?;
                }
                _ => {}
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edison_simcore::time::SimDuration;

    #[test]
    fn parses_the_module_doc_example() {
        let text = "\
# comment line
seed 42
fault 10s    0  crash
fault 15s    0  restart
fault 8.5s   2  nic loss=0.05 lat=2.0
fault 20s    2  nic-restore
fault 5s     1  disk-slow factor=4
fault 30s    1  disk-restore
fault 5s     3  cpu-throttle factor=3
fault 30s    3  cpu-restore
fault 12s    4  cache-cold   # trailing comment
";
        let plan = FaultPlan::parse(text).expect("parses");
        assert_eq!(plan.seed_root(), 42);
        assert_eq!(plan.len(), 9);
        assert_eq!(plan.faults()[0].at, SimTime::from_secs(10));
        assert_eq!(plan.faults()[2].kind, FaultKind::NicDegrade { loss: 0.05, latency_mult: 2.0 });
        assert_eq!(plan.faults()[8].kind, FaultKind::CacheColdRestart);
        assert!(plan.validate(5).is_ok());
    }

    #[test]
    fn round_trip_is_exact() {
        let plan = FaultPlan::new()
            .with_seed(7)
            .crash_restart(0, SimTime::from_secs_f64(10.123456789), SimDuration::from_millis(1500))
            .nic_degrade(2, SimTime::from_secs(8), 0.05, 2.0)
            .disk_slow(1, SimTime::from_secs(5), 4.0)
            .cpu_throttle(3, SimTime::from_secs(5), 3.0)
            .cache_cold_restart(4, SimTime::from_secs(12));
        let text = plan.to_spec();
        let back = FaultPlan::parse(&text).expect("round trip parses");
        assert_eq!(plan, back);
        assert_eq!(text, back.to_spec());
    }

    #[test]
    fn rejects_garbage_with_line_col_and_token() {
        let err = FaultPlan::parse("seed 1\nfault ten 0 crash\n").expect_err("bad time");
        assert_eq!(
            err,
            FaultPlanError::Parse {
                line: 2,
                col: 7,
                token: "ten".into(),
                msg: "bad time 'ten' (bare values are integer nanoseconds)".into(),
            }
        );
        assert!(FaultPlan::parse("bogus 1 2 3\n").is_err());
        assert!(FaultPlan::parse("fault 1s 0 melt\n").is_err());
        assert!(FaultPlan::parse("fault 1s 0 nic loss=0.1\n").is_err());
        assert!(FaultPlan::parse("fault 1s 0 crash extra\n").is_err());
        assert!(FaultPlan::parse("fault -1s 0 crash\n").is_err());
    }

    #[test]
    fn errors_point_at_the_offending_token() {
        // the bad kind sits at col 10, after two-space separators
        let err = FaultPlan::parse("fault 1s  0  melt\n").expect_err("bad kind");
        let FaultPlanError::Parse { line, col, token, .. } = err else { panic!("wrong class") };
        assert_eq!((line, col, token.as_str()), (1, 14, "melt"));
        // structural errors anchor at the directive itself
        let err = FaultPlan::parse("seed\n").expect_err("missing operand");
        let FaultPlanError::Parse { col, token, .. } = err else { panic!("wrong class") };
        assert_eq!((col, token.as_str()), (1, "seed"));
        // surplus parameters anchor at the first surplus token
        let err = FaultPlan::parse("fault 1s 0 crash extra\n").expect_err("surplus");
        let FaultPlanError::Parse { col, token, .. } = err else { panic!("wrong class") };
        assert_eq!((col, token.as_str()), (18, "extra"));
        // the rendered form carries all three pieces of context
        let text = format!("{}", FaultPlan::parse("fault 1s 0 melt\n").expect_err("bad kind"));
        assert!(text.contains("line 1") && text.contains("col 12") && text.contains("'melt'"), "{text}");
    }

    #[test]
    fn empty_and_comment_only_specs_parse_to_empty_plan() {
        let plan = FaultPlan::parse("# nothing here\n\n").expect("parses");
        assert!(plan.is_empty());
    }

    /// Decode one sampled tuple into a pushable fault. Parameters are kept
    /// in validated ranges so the sampled plans are realistic, but nothing
    /// in the round trip depends on that.
    fn fault_from(raw: (u64, usize, u8, f64)) -> (SimTime, usize, FaultKind) {
        let (t, node, sel, p) = raw;
        let kind = match sel % 9 {
            0 => FaultKind::NodeCrash,
            1 => FaultKind::NodeRestart,
            2 => FaultKind::NicDegrade { loss: p / 10.0, latency_mult: p },
            3 => FaultKind::NicRestore,
            4 => FaultKind::DiskSlow { factor: p },
            5 => FaultKind::DiskRestore,
            6 => FaultKind::CpuThrottle { factor: p },
            7 => FaultKind::CpuRestore,
            _ => FaultKind::CacheColdRestart,
        };
        (SimTime(t), node, kind)
    }

    proptest::proptest! {
        #![proptest_config(proptest::test_runner::ProptestConfig::with_cases(64))]

        /// `parse(emit(plan)) == plan` for arbitrary valid plans: the text
        /// spec is a lossless encoding (nanosecond times, shortest-f64
        /// parameters), byte-stable across a second emit.
        #[test]
        fn round_trip_parse_emit_is_identity(
            seed in proptest::any::<u64>(),
            raws in proptest::collection::vec(
                (0u64..40_000_000_000, 0usize..8, 0u8..9, 1.0f64..8.0),
                0..12,
            ),
        ) {
            let mut plan = FaultPlan::new().with_seed(seed);
            for &raw in &raws {
                let (at, node, kind) = fault_from(raw);
                plan = plan.push(at, node, kind);
            }
            let emitted = plan.to_spec();
            let back = FaultPlan::parse(&emitted).expect("emitted spec parses");
            proptest::prop_assert_eq!(&back, &plan);
            proptest::prop_assert_eq!(back.to_spec(), emitted);
        }
    }
}
