//! Deterministic fault injection for the Edison reproduction stacks.
//!
//! The paper's Introduction (advantage 2) claims a 35-node Edison cluster
//! *degrades gracefully*: losing one node costs ~1/35 of capacity, versus
//! ~1/3–1/2 on the 2–3 node Xeon testbed. This crate turns that claim into
//! a measurable input: a declarative [`FaultPlan`] describes *what breaks
//! when*, and each stack delivers the plan's entries as ordinary simcore
//! events — so faults obey the same determinism regime as everything else
//! (same seed + same plan ⇒ identical run, bit-exact across `--jobs`
//! widths).
//!
//! ## Fault model
//!
//! | kind | effect | recovery |
//! |------|--------|----------|
//! | [`FaultKind::NodeCrash`] | node drops all in-flight work, stops accepting | [`FaultKind::NodeRestart`] cold-restarts it |
//! | [`FaultKind::NicDegrade`] | packet loss + latency multiplier on the node's NIC | [`FaultKind::NicRestore`] |
//! | [`FaultKind::DiskSlow`] | disk service times × factor (sick-disk straggler) | [`FaultKind::DiskRestore`] |
//! | [`FaultKind::CpuThrottle`] | CPU work × factor (thermal-throttle straggler) | [`FaultKind::CpuRestore`] |
//! | [`FaultKind::CacheColdRestart`] | memcached process restart: contents flushed | cache re-warms organically |
//!
//! A plan is built either programmatically ([`FaultPlan::new`] + the
//! builder methods) or parsed from the line-based text spec
//! ([`FaultPlan::parse`], written by [`FaultPlan::to_spec`]) that the
//! `repro --fault-plan <file>` flag loads.
//!
//! Per-fault randomness (e.g. which packets a lossy NIC drops) uses seeds
//! derived with simrun's [`derive_seed`](edison_simrun::derive_seed) from
//! the plan's seed root and the fault's index — deterministic, and
//! independent of how many faults precede it.
//!
//! ## Normalisation
//!
//! [`FaultPlan::normalized`] sorts faults by injection time (stable in plan
//! order for ties) and cancels *zero-width* pairs — a crash and its restart
//! (or a degrade and its restore) at the same [`SimTime`] on the same node.
//! A zero-width fault is observationally a no-op by construction, which the
//! property tests in the workspace root assert end-to-end.

pub mod metrics;
mod plan;
mod spec;

pub use plan::{Fault, FaultKind, FaultPlan, FaultPlanError, RecoveryWindow};
