//! Shared metric names for the fault layer, so the web stack, the
//! MapReduce stack, and the experiments agree on spelling — the byte-exact
//! export determinism tests depend on this.

use edison_simtel::Telemetry;

/// Counter: faults actually injected, labelled `{kind, tier}`.
pub const FAULT_INJECTED_TOTAL: &str = "fault_injected_total";

/// Counter: plan entries that did not apply (e.g. a restart for a node
/// that is not down), labelled `{kind, tier}`.
pub const FAULT_SKIPPED_TOTAL: &str = "fault_skipped_total";

/// Counter: load-balancer failovers — a backend taken out of rotation
/// after failed health checks, labelled `{tier}`.
pub const FAILOVER_TOTAL: &str = "failover_total";

/// Counter: MapReduce tasks re-executed after node loss, labelled
/// `{kind}` (`map` / `reduce` / `map_output`).
pub const TASK_REEXEC_TOTAL: &str = "task_reexec_total";

/// Counter: worker nodes declared lost by heartbeat timeout.
pub const NODE_LOST_TOTAL: &str = "node_lost_total";

/// Histogram: seconds from fault injection until the victim is back in
/// service (web: back in LB rotation; MapReduce: re-registered and
/// schedulable).
pub const RECOVERY_SECONDS: &str = "fault_recovery_seconds";

/// Bucket bounds for [`RECOVERY_SECONDS`].
pub const RECOVERY_BOUNDS_S: &[f64] = &[0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0];

/// Register help text for every fault metric. Called unconditionally by
/// traced fault-capable runs so exports are byte-identical whether or not
/// any fault fired.
pub fn register_help(tel: &mut Telemetry) {
    tel.help(FAULT_INJECTED_TOTAL, "faults injected from the FaultPlan, by kind and tier");
    tel.help(FAULT_SKIPPED_TOTAL, "fault plan entries that did not apply, by kind and tier");
    tel.help(FAILOVER_TOTAL, "backends failed over (taken out of LB rotation) after health-check failures");
    tel.help(TASK_REEXEC_TOTAL, "tasks re-executed after node loss, by kind");
    tel.help(NODE_LOST_TOTAL, "worker nodes declared lost by heartbeat timeout");
    tel.help(RECOVERY_SECONDS, "seconds from fault injection to the victim returning to service");
}
