//! The declarative fault schedule: [`FaultKind`], [`Fault`], [`FaultPlan`].

use edison_simcore::time::{SimDuration, SimTime};
use edison_simrun::derive_seed;
use std::fmt;

/// What breaks (or recovers). See the crate docs for the model table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The node halts: in-flight work is lost, nothing is accepted.
    NodeCrash,
    /// Cold restart of a crashed node: empty queues, cold caches.
    NodeRestart,
    /// NIC degradation: extra packet-loss probability and a latency
    /// multiplier on traffic touching the node.
    NicDegrade {
        /// Extra drop probability in `[0, 1)` applied per packet/attempt.
        loss: f64,
        /// Latency multiplier (≥ 1.0) on traffic touching the node.
        latency_mult: f64,
    },
    /// End of a NIC degradation.
    NicRestore,
    /// Disk service times multiplied by `factor` (sick-disk straggler).
    DiskSlow {
        /// Service-time multiplier (> 1.0).
        factor: f64,
    },
    /// End of a disk slowdown.
    DiskRestore,
    /// CPU work inflated by `factor` (thermal-throttle straggler).
    CpuThrottle {
        /// CPU-work multiplier (> 1.0).
        factor: f64,
    },
    /// End of a CPU throttle.
    CpuRestore,
    /// memcached process restart: contents flushed, memory released; the
    /// cache re-warms organically from subsequent misses.
    CacheColdRestart,
}

impl FaultKind {
    /// Stable label used in telemetry (`fault_injected_total{kind=...}`)
    /// and in the text spec.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::NodeCrash => "crash",
            FaultKind::NodeRestart => "restart",
            FaultKind::NicDegrade { .. } => "nic",
            FaultKind::NicRestore => "nic-restore",
            FaultKind::DiskSlow { .. } => "disk-slow",
            FaultKind::DiskRestore => "disk-restore",
            FaultKind::CpuThrottle { .. } => "cpu-throttle",
            FaultKind::CpuRestore => "cpu-restore",
            FaultKind::CacheColdRestart => "cache-cold",
        }
    }

    /// True when `other` is the restore kind that cancels this kind when
    /// both land on the same node at the same instant (zero-width pair).
    fn cancelled_by(&self, other: FaultKind) -> bool {
        matches!(
            (self, other),
            (FaultKind::NodeCrash, FaultKind::NodeRestart)
                | (FaultKind::NicDegrade { .. }, FaultKind::NicRestore)
                | (FaultKind::DiskSlow { .. }, FaultKind::DiskRestore)
                | (FaultKind::CpuThrottle { .. }, FaultKind::CpuRestore)
        )
    }

    /// Canonical tie-break rank among kinds landing on the same node at the
    /// same instant. Break kinds sort before their restores so zero-width
    /// pairs are adjacent regardless of insertion order.
    fn rank(&self) -> u8 {
        match self {
            FaultKind::NodeCrash => 0,
            FaultKind::NodeRestart => 1,
            FaultKind::NicDegrade { .. } => 2,
            FaultKind::NicRestore => 3,
            FaultKind::DiskSlow { .. } => 4,
            FaultKind::DiskRestore => 5,
            FaultKind::CpuThrottle { .. } => 6,
            FaultKind::CpuRestore => 7,
            FaultKind::CacheColdRestart => 8,
        }
    }

    /// Parameter pair for the canonical order (zeros for parameterless
    /// kinds). Compared with `total_cmp`, so the order is total even for
    /// not-yet-validated plans carrying non-finite values.
    fn params(&self) -> (f64, f64) {
        match *self {
            FaultKind::NicDegrade { loss, latency_mult } => (loss, latency_mult),
            FaultKind::DiskSlow { factor } | FaultKind::CpuThrottle { factor } => (factor, 0.0),
            _ => (0.0, 0.0),
        }
    }
}

/// One observed crash-recovery interval, reported by the worlds so the
/// schedule explorer (`crates/simexplore`) can aim follow-up faults at it.
///
/// `start` is the instant the node came back up (web: `restart` applied;
/// MapReduce: nodemanager re-registered) and `end` the instant it was
/// usable again (web: back in LB rotation after RISE health checks;
/// MapReduce: job artifacts re-localised). Faults injected inside this
/// window land on a node the control plane already believes is returning —
/// exactly where hand-written plans rarely look.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryWindow {
    /// Tier-local node index the window belongs to.
    pub node: usize,
    /// Node back up (restart applied / re-registered).
    pub start: SimTime,
    /// Node usable again (in rotation / re-localised).
    pub end: SimTime,
}

/// One scheduled fault: a kind, a target node, and an injection time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fault {
    /// Absolute simulation time of injection.
    pub at: SimTime,
    /// Target node index (tier-local: web/cache node for the web stack,
    /// worker index for MapReduce).
    pub node: usize,
    /// What happens.
    pub kind: FaultKind,
}

/// Error raised when parsing or validating a plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultPlanError {
    /// The text spec could not be parsed (1-based line and column).
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// 1-based character column of the offending token (column of the
        /// directive for structural errors like a missing operand).
        col: usize,
        /// The offending token itself (the directive for structural
        /// errors; empty only for an empty line that somehow errored).
        token: String,
        /// What was wrong.
        msg: String,
    },
    /// A structurally parsed fault has out-of-range parameters or targets
    /// a node outside the tier.
    Invalid {
        /// Index of the offending fault in plan order.
        index: usize,
        /// What was wrong.
        msg: String,
    },
}

impl fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultPlanError::Parse { line, col, token, msg } => {
                write!(f, "fault plan line {line}, col {col}: {msg}")?;
                if !token.is_empty() {
                    write!(f, " (at '{token}')")?;
                }
                Ok(())
            }
            FaultPlanError::Invalid { index, msg } => write!(f, "fault plan entry {index}: {msg}"),
        }
    }
}

impl std::error::Error for FaultPlanError {}

/// A declarative, ordered schedule of faults plus a seed root for any
/// per-fault randomness. Build with the chainable methods, or parse from
/// the text spec; apply by scheduling each entry as a simulation event.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    seed_root: u64,
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// Empty plan with seed root 0 (derive from the run seed instead when
    /// the plan carries randomness).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Set the seed root all per-fault seeds derive from.
    pub fn with_seed(mut self, seed_root: u64) -> Self {
        self.seed_root = seed_root;
        self
    }

    /// The seed root (see [`FaultPlan::fault_seed`]).
    pub fn seed_root(&self) -> u64 {
        self.seed_root
    }

    /// Append an arbitrary fault.
    pub fn push(mut self, at: SimTime, node: usize, kind: FaultKind) -> Self {
        self.faults.push(Fault { at, node, kind });
        self
    }

    /// Crash `node` at `at`.
    pub fn crash(self, node: usize, at: SimTime) -> Self {
        self.push(at, node, FaultKind::NodeCrash)
    }

    /// Cold-restart `node` at `at`.
    pub fn restart(self, node: usize, at: SimTime) -> Self {
        self.push(at, node, FaultKind::NodeRestart)
    }

    /// Crash `node` at `at` and restart it `down` later.
    pub fn crash_restart(self, node: usize, at: SimTime, down: SimDuration) -> Self {
        self.crash(node, at).restart(node, at + down)
    }

    /// Degrade `node`'s NIC from `at`: extra `loss` drop probability and a
    /// `latency_mult` multiplier.
    pub fn nic_degrade(self, node: usize, at: SimTime, loss: f64, latency_mult: f64) -> Self {
        self.push(at, node, FaultKind::NicDegrade { loss, latency_mult })
    }

    /// End a NIC degradation on `node` at `at`.
    pub fn nic_restore(self, node: usize, at: SimTime) -> Self {
        self.push(at, node, FaultKind::NicRestore)
    }

    /// Slow `node`'s disk by `factor` from `at`.
    pub fn disk_slow(self, node: usize, at: SimTime, factor: f64) -> Self {
        self.push(at, node, FaultKind::DiskSlow { factor })
    }

    /// End a disk slowdown on `node` at `at`.
    pub fn disk_restore(self, node: usize, at: SimTime) -> Self {
        self.push(at, node, FaultKind::DiskRestore)
    }

    /// Throttle `node`'s CPU by `factor` from `at`.
    pub fn cpu_throttle(self, node: usize, at: SimTime, factor: f64) -> Self {
        self.push(at, node, FaultKind::CpuThrottle { factor })
    }

    /// End a CPU throttle on `node` at `at`.
    pub fn cpu_restore(self, node: usize, at: SimTime) -> Self {
        self.push(at, node, FaultKind::CpuRestore)
    }

    /// Flush the memcached instance on `node` at `at` (cold restart).
    pub fn cache_cold_restart(self, node: usize, at: SimTime) -> Self {
        self.push(at, node, FaultKind::CacheColdRestart)
    }

    /// Faults in plan order (insertion order, not time order — see
    /// [`FaultPlan::normalized`] for the injection schedule).
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// True when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// This plan with the `index`-th fault (plan order) moved to `at`.
    /// Out-of-range indices return the plan unchanged. The explorer's
    /// start-jitter and pairwise-reorder moves are built from this.
    pub fn with_fault_at(&self, index: usize, at: SimTime) -> FaultPlan {
        let mut p = self.clone();
        if let Some(f) = p.faults.get_mut(index) {
            f.at = at;
        }
        p
    }

    /// This plan without the `index`-th fault (plan order). Out-of-range
    /// indices return the plan unchanged. The shrinker's removal probe.
    pub fn without_fault(&self, index: usize) -> FaultPlan {
        let mut p = self.clone();
        if index < p.faults.len() {
            p.faults.remove(index);
        }
        p
    }

    /// The deterministic seed for per-fault randomness of the `index`-th
    /// fault (plan order), derived from the seed root via simrun's
    /// `derive_seed` so it is independent of sibling faults.
    pub fn fault_seed(&self, index: usize) -> u64 {
        derive_seed(self.seed_root, "simfault:fault", u64::try_from(index).unwrap_or(u64::MAX))
    }

    /// The injection schedule: faults in the *canonical order* — sorted by
    /// `(time, node, kind rank, parameters)` — with zero-width pairs
    /// cancelled: a crash and a restart (or a degrade and its restore) on
    /// the same node at the same instant annihilate, making a zero-width
    /// fault observationally a no-op.
    ///
    /// The sort key deliberately ignores insertion order, so any
    /// permutation of the same fault set normalizes to the same plan (and
    /// the same `to_spec()` bytes) — the property the schedule explorer's
    /// dedup and the `--jobs`-width determinism argument both lean on.
    /// Same-instant ties across nodes inject in node order; a break kind
    /// sorts before its restore on the same node.
    pub fn normalized(&self) -> FaultPlan {
        let mut order: Vec<usize> = (0..self.faults.len()).collect();
        order.sort_by(|&a, &b| {
            let (fa, fb) = (&self.faults[a], &self.faults[b]);
            let (pa, pb) = (fa.kind.params(), fb.kind.params());
            fa.at
                .cmp(&fb.at)
                .then(fa.node.cmp(&fb.node))
                .then(fa.kind.rank().cmp(&fb.kind.rank()))
                .then(pa.0.total_cmp(&pb.0))
                .then(pa.1.total_cmp(&pb.1))
        });
        let mut dropped = vec![false; self.faults.len()];
        for a in 0..order.len() {
            let ia = order[a];
            if dropped[ia] {
                continue;
            }
            let fa = self.faults[ia];
            for &ib in &order[a + 1..] {
                if dropped[ib] {
                    continue;
                }
                let fb = self.faults[ib];
                if fb.at != fa.at {
                    break;
                }
                if fb.node == fa.node && fa.kind.cancelled_by(fb.kind) {
                    dropped[ia] = true;
                    dropped[ib] = true;
                    break;
                }
            }
        }
        let faults = order
            .into_iter()
            .filter(|&i| !dropped[i])
            .map(|i| self.faults[i])
            .collect();
        FaultPlan { seed_root: self.seed_root, faults }
    }

    /// Check every fault targets a node below `nodes` and carries in-range
    /// parameters.
    pub fn validate(&self, nodes: usize) -> Result<(), FaultPlanError> {
        for (index, f) in self.faults.iter().enumerate() {
            let err = |msg: String| Err(FaultPlanError::Invalid { index, msg });
            if f.node >= nodes {
                return err(format!("node {} out of range (tier has {nodes})", f.node));
            }
            match f.kind {
                FaultKind::NicDegrade { loss, latency_mult } => {
                    if !(0.0..1.0).contains(&loss) || !loss.is_finite() {
                        return err(format!("nic loss {loss} not in [0, 1)"));
                    }
                    if !(latency_mult >= 1.0) || !latency_mult.is_finite() {
                        return err(format!("nic latency multiplier {latency_mult} must be ≥ 1"));
                    }
                }
                FaultKind::DiskSlow { factor } | FaultKind::CpuThrottle { factor } => {
                    if !(factor >= 1.0) || !factor.is_finite() {
                        return err(format!("{} factor {factor} must be ≥ 1", f.kind.name()));
                    }
                }
                _ => {}
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn builder_collects_in_plan_order() {
        let p = FaultPlan::new()
            .crash(0, t(10))
            .restart(0, t(15))
            .cache_cold_restart(3, t(5));
        assert_eq!(p.len(), 3);
        assert_eq!(p.faults()[2].kind, FaultKind::CacheColdRestart);
    }

    #[test]
    fn crash_restart_expands_to_pair() {
        let p = FaultPlan::new().crash_restart(2, t(10), SimDuration::from_secs(5));
        assert_eq!(p.faults()[0], Fault { at: t(10), node: 2, kind: FaultKind::NodeCrash });
        assert_eq!(p.faults()[1], Fault { at: t(15), node: 2, kind: FaultKind::NodeRestart });
    }

    #[test]
    fn normalized_sorts_into_canonical_order() {
        let p = FaultPlan::new().crash(1, t(20)).crash(0, t(10)).cache_cold_restart(2, t(20));
        let n = p.normalized();
        assert_eq!(n.faults()[0].node, 0);
        assert_eq!(n.faults()[1].node, 1); // same-instant ties inject in node order
        assert_eq!(n.faults()[2].node, 2);
        // insertion order is not part of the canonical key: the reversed
        // plan normalizes to byte-identical spec text
        let rev = FaultPlan::new().cache_cold_restart(2, t(20)).crash(0, t(10)).crash(1, t(20));
        assert_eq!(rev.normalized().to_spec(), n.to_spec());
    }

    #[test]
    fn perturbation_helpers_move_and_remove() {
        let p = FaultPlan::new().crash(0, t(10)).restart(0, t(15));
        let moved = p.with_fault_at(1, t(20));
        assert_eq!(moved.faults()[1].at, t(20));
        assert_eq!(moved.faults()[0], p.faults()[0]);
        assert_eq!(p.with_fault_at(9, t(1)), p, "out of range is a no-op");
        let removed = p.without_fault(0);
        assert_eq!(removed.len(), 1);
        assert_eq!(removed.faults()[0].kind, FaultKind::NodeRestart);
        assert_eq!(p.without_fault(9), p, "out of range is a no-op");
    }

    #[test]
    fn zero_width_crash_restart_cancels() {
        let p = FaultPlan::new().crash_restart(0, t(10), SimDuration::ZERO).crash(1, t(12));
        let n = p.normalized();
        assert_eq!(n.len(), 1);
        assert_eq!(n.faults()[0].node, 1);
    }

    #[test]
    fn zero_width_degrade_pairs_cancel() {
        let p = FaultPlan::new()
            .nic_degrade(0, t(1), 0.1, 2.0)
            .nic_restore(0, t(1))
            .disk_slow(1, t(2), 4.0)
            .disk_restore(1, t(2))
            .cpu_throttle(2, t(3), 3.0)
            .cpu_restore(2, t(3));
        assert!(p.normalized().is_empty());
    }

    #[test]
    fn nonzero_width_pairs_survive() {
        let p = FaultPlan::new().crash_restart(0, t(10), SimDuration::from_millis(1));
        assert_eq!(p.normalized().len(), 2);
    }

    #[test]
    fn mismatched_nodes_do_not_cancel() {
        let p = FaultPlan::new().crash(0, t(10)).restart(1, t(10));
        assert_eq!(p.normalized().len(), 2);
    }

    #[test]
    fn fault_seeds_are_stable_and_distinct() {
        let p = FaultPlan::new().with_seed(42).crash(0, t(1)).crash(1, t(2));
        assert_eq!(p.fault_seed(0), p.clone().fault_seed(0));
        assert_ne!(p.fault_seed(0), p.fault_seed(1));
        let q = FaultPlan::new().with_seed(43).crash(0, t(1));
        assert_ne!(p.fault_seed(0), q.fault_seed(0));
    }

    /// Decode one sampled tuple into a pushable fault (mirrors the helper
    /// in `spec.rs` tests; duplicated so each file reads standalone).
    fn fault_from(raw: (u64, usize, u8, f64)) -> (SimTime, usize, FaultKind) {
        let (ns, node, sel, p) = raw;
        let kind = match sel % 9 {
            0 => FaultKind::NodeCrash,
            1 => FaultKind::NodeRestart,
            2 => FaultKind::NicDegrade { loss: p / 10.0, latency_mult: p },
            3 => FaultKind::NicRestore,
            4 => FaultKind::DiskSlow { factor: p },
            5 => FaultKind::DiskRestore,
            6 => FaultKind::CpuThrottle { factor: p },
            7 => FaultKind::CpuRestore,
            _ => FaultKind::CacheColdRestart,
        };
        (SimTime(ns), node, kind)
    }

    proptest::proptest! {
        #![proptest_config(proptest::test_runner::ProptestConfig::with_cases(64))]

        /// Order-normalisation is idempotent and permutation-invariant:
        /// any insertion order of the same fault set normalizes to the
        /// same plan and byte-identical spec text. Times are drawn from a
        /// small grid so same-instant ties (the interesting case for the
        /// canonical tie-break and zero-width cancellation) are common.
        #[test]
        fn normalization_idempotent_and_permutation_invariant(
            seed in proptest::any::<u64>(),
            perm_seed in proptest::any::<u64>(),
            raws in proptest::collection::vec(
                (0u64..8_000_000_000, 0usize..4, 0u8..9, 1.0f64..4.0),
                0..10,
            ),
        ) {
            use edison_simcore::rng::SimRng;
            // snap times onto a 1 s grid: collisions exercise the ties
            let snap = |ns: u64| (ns / 1_000_000_000) * 1_000_000_000;
            let mut plan = FaultPlan::new().with_seed(seed);
            for &raw in &raws {
                let (at, node, kind) = fault_from(raw);
                plan = plan.push(SimTime(snap(at.0)), node, kind);
            }
            // the same set in a seed-derived shuffled order (Fisher-Yates)
            let mut order: Vec<usize> = (0..raws.len()).collect();
            let mut rng = SimRng::new(perm_seed);
            for i in (1..order.len()).rev() {
                let j = rng.below(i as u64 + 1) as usize;
                order.swap(i, j);
            }
            let mut shuffled = FaultPlan::new().with_seed(seed);
            for &i in &order {
                let (at, node, kind) = fault_from(raws[i]);
                shuffled = shuffled.push(SimTime(snap(at.0)), node, kind);
            }
            let n = plan.normalized();
            proptest::prop_assert_eq!(&shuffled.normalized(), &n);
            proptest::prop_assert_eq!(shuffled.normalized().to_spec(), n.to_spec());
            proptest::prop_assert_eq!(&n.normalized(), &n);
            proptest::prop_assert_eq!(n.normalized().to_spec(), n.to_spec());
        }
    }

    #[test]
    fn validate_catches_bad_params() {
        let bad_node = FaultPlan::new().crash(9, t(1));
        assert!(bad_node.validate(4).is_err());
        let bad_loss = FaultPlan::new().nic_degrade(0, t(1), 1.5, 2.0);
        assert!(bad_loss.validate(4).is_err());
        let bad_factor = FaultPlan::new().disk_slow(0, t(1), 0.5);
        assert!(bad_factor.validate(4).is_err());
        let ok = FaultPlan::new()
            .crash_restart(0, t(1), SimDuration::from_secs(1))
            .nic_degrade(1, t(2), 0.05, 2.0)
            .cpu_throttle(2, t(3), 3.0);
        assert!(ok.validate(4).is_ok());
    }
}
