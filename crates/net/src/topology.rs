//! The testbed topology of the paper, as a thin layer over [`Network`].
//!
//! * every **host** gets a full-duplex pair of NIC links (up = egress,
//!   down = ingress) at its line rate;
//! * hosts are grouped under non-blocking **top-of-rack switches** (the
//!   paper's Edison boxes each hold a switch; the Dell rack has its own);
//! * **groups** are joined by explicit uplinks (the 1 Gbps inter-room link
//!   that caps client→Edison aggregate bandwidth in §5.1.2's fairness
//!   discussion);
//! * one-way propagation latencies are per group pair, from the paper's
//!   ping round trips.

use crate::network::{LinkId, Network};
use edison_simcore::time::SimDuration;
use std::collections::HashMap;

/// Index of a switch group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroupId(pub usize);

/// Index of a host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HostId(pub usize);

#[derive(Debug, Clone)]
struct Host {
    group: GroupId,
    up: LinkId,
    down: LinkId,
}

/// A grouped-star topology with per-pair latencies. See module docs.
#[derive(Debug, Clone, Default)]
pub struct Topology {
    net: Network,
    hosts: Vec<Host>,
    /// One-way latency within a group.
    // simlint: allow(R1) keyed lookup only; never iterated
    intra_latency: HashMap<GroupId, SimDuration>,
    /// Uplink (directed, one per direction) and one-way latency per pair.
    // simlint: allow(R1) keyed lookup only; never iterated
    interconnect: HashMap<(GroupId, GroupId), (LinkId, SimDuration)>,
    groups: usize,
}

impl Topology {
    /// Empty topology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a switch group whose hosts see `one_way_latency` to each other.
    pub fn add_group(&mut self, one_way_latency: SimDuration) -> GroupId {
        let g = GroupId(self.groups);
        self.groups += 1;
        self.intra_latency.insert(g, one_way_latency);
        g
    }

    /// Add a host to `group` with the given NIC line rate (bits/s) and
    /// goodput efficiency.
    pub fn add_host(&mut self, group: GroupId, nic_bps: f64, efficiency: f64) -> HostId {
        assert!(group.0 < self.groups, "unknown group");
        let up = self.net.add_link_bps(nic_bps, efficiency);
        let down = self.net.add_link_bps(nic_bps, efficiency);
        self.hosts.push(Host { group, up, down });
        HostId(self.hosts.len() - 1)
    }

    /// Join two groups with a bidirectional uplink of `capacity_bps`
    /// (modelled as one directed link per direction) and a one-way latency.
    pub fn connect_groups(
        &mut self,
        a: GroupId,
        b: GroupId,
        capacity_bps: f64,
        efficiency: f64,
        one_way_latency: SimDuration,
    ) {
        let ab = self.net.add_link_bps(capacity_bps, efficiency);
        let ba = self.net.add_link_bps(capacity_bps, efficiency);
        self.interconnect.insert((a, b), (ab, one_way_latency));
        self.interconnect.insert((b, a), (ba, one_way_latency));
    }

    /// The link path and one-way latency from `src` to `dst`.
    ///
    /// Same group: src-up → dst-down (non-blocking switch). Different
    /// groups: src-up → uplink → dst-down. Loopback (src == dst): empty
    /// path, zero latency (the kernel's loopback never hits the NIC).
    ///
    /// Panics if the groups are not connected.
    pub fn path(&self, src: HostId, dst: HostId) -> (Vec<LinkId>, SimDuration) {
        if src == dst {
            return (vec![], SimDuration::ZERO);
        }
        let s = &self.hosts[src.0];
        let d = &self.hosts[dst.0];
        if s.group == d.group {
            (vec![s.up, d.down], self.intra_latency[&s.group])
        } else {
            let (uplink, lat) = *self
                .interconnect
                .get(&(s.group, d.group))
                .unwrap_or_else(|| panic!("groups {:?} and {:?} not connected", s.group, d.group));
            (vec![s.up, uplink, d.down], lat)
        }
    }

    /// One-way latency between two hosts.
    pub fn latency(&self, src: HostId, dst: HostId) -> SimDuration {
        self.path(src, dst).1
    }

    /// Round-trip latency between two hosts (the paper reports pings).
    pub fn rtt(&self, src: HostId, dst: HostId) -> SimDuration {
        let l = self.latency(src, dst);
        l + l
    }

    /// The underlying fluid network.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Mutable access to the underlying fluid network (flow start/finish).
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.net
    }

    /// The egress link of a host (for utilisation metrics).
    pub fn uplink(&self, h: HostId) -> LinkId {
        self.hosts[h.0].up
    }

    /// The ingress link of a host.
    pub fn downlink(&self, h: HostId) -> LinkId {
        self.hosts[h.0].down
    }

    /// The group a host belongs to.
    pub fn group_of(&self, h: HostId) -> GroupId {
        self.hosts[h.0].group
    }

    /// Number of hosts.
    pub fn host_count(&self) -> usize {
        self.hosts.len()
    }
}

/// Build the paper's two-room testbed fabric:
/// an Edison room (ToR per box, modelled as one non-blocking group with the
/// measured 1.3 ms intra-RTT) and a Dell room (0.24 ms intra-RTT) holding
/// both the Dell servers and the client machines, joined by a 1 Gbps link
/// (0.8 ms cross RTT).
pub struct TwoRooms {
    /// The assembled topology.
    pub topo: Topology,
    /// Edison room group.
    pub edison_room: GroupId,
    /// Dell room group (servers + clients).
    pub dell_room: GroupId,
}

impl TwoRooms {
    /// Create the fabric with no hosts yet.
    pub fn new() -> Self {
        let mut topo = Topology::new();
        // one-way latencies = half the measured ping RTTs (§4.4)
        let edison_room = topo.add_group(SimDuration::from_micros(650));
        let dell_room = topo.add_group(SimDuration::from_micros(120));
        topo.connect_groups(
            edison_room,
            dell_room,
            1.0e9,
            0.942,
            SimDuration::from_micros(400),
        );
        TwoRooms { topo, edison_room, dell_room }
    }
}

impl Default for TwoRooms {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edison_simcore::time::SimTime;

    #[test]
    fn intra_group_path_uses_two_links() {
        let mut rooms = TwoRooms::new();
        let a = rooms.topo.add_host(rooms.edison_room, 100e6, 0.939);
        let b = rooms.topo.add_host(rooms.edison_room, 100e6, 0.939);
        let (path, lat) = rooms.topo.path(a, b);
        assert_eq!(path.len(), 2);
        assert_eq!(lat, SimDuration::from_micros(650));
    }

    #[test]
    fn cross_group_path_adds_uplink() {
        let mut rooms = TwoRooms::new();
        let e = rooms.topo.add_host(rooms.edison_room, 100e6, 0.939);
        let d = rooms.topo.add_host(rooms.dell_room, 1e9, 0.942);
        let (path, lat) = rooms.topo.path(e, d);
        assert_eq!(path.len(), 3);
        assert_eq!(lat, SimDuration::from_micros(400));
        // RTT matches the paper's 0.8 ms Dell↔Edison ping
        assert_eq!(rooms.topo.rtt(e, d), SimDuration::from_micros(800));
    }

    #[test]
    fn loopback_is_free() {
        let mut rooms = TwoRooms::new();
        let a = rooms.topo.add_host(rooms.dell_room, 1e9, 0.942);
        let (path, lat) = rooms.topo.path(a, a);
        assert!(path.is_empty());
        assert_eq!(lat, SimDuration::ZERO);
    }

    #[test]
    fn edison_to_edison_bandwidth_is_nic_bound() {
        // §4.4: Edison↔Edison transfers run at the 100 Mbps NIC rate even
        // though the switches are 1 Gbps.
        let mut rooms = TwoRooms::new();
        let a = rooms.topo.add_host(rooms.edison_room, 100e6, 0.939);
        let b = rooms.topo.add_host(rooms.edison_room, 100e6, 0.939);
        let (path, _) = rooms.topo.path(a, b);
        let t0 = SimTime::ZERO;
        rooms.topo.network_mut().start_flow(t0, 1, 1e9, path, f64::INFINITY);
        let (_, at) = rooms.topo.network_mut().next_completion(t0).unwrap();
        // 1 GB at 93.9 Mbit/s ≈ 85 s — matches the iperf result shape
        assert!((at.as_secs_f64() - 85.2).abs() < 0.2);
    }

    #[test]
    fn interroom_uplink_caps_aggregate() {
        // 24 Edison hosts each sending to a Dell-room client share 1 Gbps:
        // each gets ~41.7 Mbit/s of the uplink — below their NIC rate.
        let mut rooms = TwoRooms::new();
        let mut flows = vec![];
        for i in 0..24 {
            let e = rooms.topo.add_host(rooms.edison_room, 100e6, 0.939);
            let c = rooms.topo.add_host(rooms.dell_room, 1e9, 0.942);
            flows.push((i as u64, rooms.topo.path(e, c).0));
        }
        let t0 = SimTime::ZERO;
        for (id, path) in flows {
            rooms.topo.network_mut().start_flow(t0, id, 1e9, path, f64::INFINITY);
        }
        let rate = rooms.topo.network().flow_rate(0);
        let uplink_share = 1e9 * 0.942 / 8.0 / 24.0;
        assert!((rate - uplink_share).abs() / uplink_share < 1e-6, "rate {rate}");
    }

    #[test]
    #[should_panic(expected = "not connected")]
    fn disconnected_groups_panic() {
        let mut topo = Topology::new();
        let g1 = topo.add_group(SimDuration::ZERO);
        let g2 = topo.add_group(SimDuration::ZERO);
        let a = topo.add_host(g1, 1e9, 1.0);
        let b = topo.add_host(g2, 1e9, 1.0);
        topo.path(a, b);
    }
}
