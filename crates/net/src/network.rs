//! Links, flows, and the max-min fair-share solver.
//!
//! ### Model
//!
//! A flow transfers `bytes` over an ordered set of directed links. At any
//! instant the rate vector is the **max-min fair allocation**: rates are
//! raised uniformly until a link saturates, flows through that link are
//! frozen at their share, and the process repeats (progressive filling).
//! Per-flow rate caps (application-limited senders, e.g. a reducer fetching
//! map output over a throttled fetcher) participate as freeze candidates.
//!
//! Between mutations rates are constant, so completions are exact — the
//! same epoch/advance/take-finished protocol as
//! [`edison_simcore::fluid::FluidResource`].

use edison_simcore::time::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// Index of a directed link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub usize);

/// Caller-assigned flow identifier.
pub type FlowId = u64;

/// Bytes below which remaining work counts as finished.
///
/// Completion instants are rounded to whole nanoseconds, so advancing can
/// leave up to `rate × 0.5 ns` of residue — ≈0.06 bytes at 1 Gbps. Eight
/// bytes is far above any residue and far below any modelled transfer.
const BYTES_EPS: f64 = 8.0;

#[derive(Debug, Clone)]
struct Link {
    /// Capacity in bytes/second.
    capacity: f64,
}

#[derive(Debug, Clone)]
struct Flow {
    remaining: f64,
    links: Vec<LinkId>,
    rate_cap: f64,
    /// Current max-min rate (recomputed on every mutation).
    rate: f64,
}

/// One completed transfer, recorded when flow logging is enabled — the raw
/// material for per-flow telemetry spans.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowRecord {
    /// Caller-assigned flow id.
    pub id: FlowId,
    /// When the flow started.
    pub start: SimTime,
    /// When it completed (cancelled flows are not recorded).
    pub end: SimTime,
    /// Transfer size in bytes.
    pub bytes: f64,
}

/// A fluid network: directed capacitated links shared by flows under
/// max-min fairness. See module docs.
#[derive(Debug, Clone, Default)]
pub struct Network {
    links: Vec<Link>,
    /// Ordered by id so every iteration — progress accumulation, rate
    /// freezing, float summation — visits flows in the same order on every
    /// run. A `HashMap` here made `bytes_delivered` and the max-min solve
    /// depend on hasher-randomised iteration order.
    flows: BTreeMap<FlowId, Flow>,
    last_update: SimTime,
    epoch: u64,
    bytes_delivered: f64,
    /// Completed-transfer log; `None` (the default) costs one branch per
    /// flow start/finish.
    flow_log: Option<FlowLogState>,
}

#[derive(Debug, Clone, Default)]
struct FlowLogState {
    /// Start time and size of in-flight flows (id-ordered for determinism).
    starts: BTreeMap<FlowId, (SimTime, f64)>,
    records: Vec<FlowRecord>,
}

impl Network {
    /// Empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a directed link with `capacity_bps` **bits**/second line rate and
    /// a goodput efficiency factor (TCP ≈ 0.94 per the paper's iperf runs).
    /// Returns its id. Capacity is stored in bytes/second of goodput.
    pub fn add_link_bps(&mut self, capacity_bps: f64, efficiency: f64) -> LinkId {
        assert!(capacity_bps > 0.0 && efficiency > 0.0 && efficiency <= 1.0);
        self.links.push(Link { capacity: capacity_bps * efficiency / 8.0 });
        LinkId(self.links.len() - 1)
    }

    /// Add a link with capacity given directly in bytes/second.
    pub fn add_link_bytes(&mut self, capacity_bytes_per_s: f64) -> LinkId {
        assert!(capacity_bytes_per_s > 0.0);
        self.links.push(Link { capacity: capacity_bytes_per_s });
        LinkId(self.links.len() - 1)
    }

    /// Goodput capacity of a link, bytes/second.
    pub fn link_capacity(&self, l: LinkId) -> f64 {
        self.links[l.0].capacity
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Number of in-flight flows.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// True when no flow is in flight.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Mutation epoch for the completion-event protocol.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Total bytes delivered across all completed/ongoing flows.
    pub fn bytes_delivered(&self) -> f64 {
        self.bytes_delivered
    }

    /// Start logging completed transfers as [`FlowRecord`]s. Idempotent;
    /// flows already in flight are logged from the current instant.
    pub fn enable_flow_log(&mut self) {
        if self.flow_log.is_none() {
            let starts = self
                .flows
                .iter()
                .map(|(&id, f)| (id, (self.last_update, f.remaining)))
                .collect();
            self.flow_log = Some(FlowLogState { starts, records: Vec::new() });
        }
    }

    /// Completed transfers in completion order (ties id-ordered); empty
    /// unless [`enable_flow_log`](Self::enable_flow_log) was called.
    pub fn flow_log(&self) -> &[FlowRecord] {
        self.flow_log.as_ref().map_or(&[], |l| l.records.as_slice())
    }

    /// Current rate of a flow, bytes/second (0 if unknown).
    pub fn flow_rate(&self, id: FlowId) -> f64 {
        self.flows.get(&id).map_or(0.0, |f| f.rate)
    }

    /// Remaining bytes of a flow, if in flight.
    pub fn remaining(&self, id: FlowId) -> Option<f64> {
        self.flows.get(&id).map(|f| f.remaining)
    }

    /// Instantaneous utilisation of a link in [0, 1].
    pub fn link_utilization(&self, l: LinkId) -> f64 {
        let used: f64 = self
            .flows
            .values()
            .filter(|f| f.links.contains(&l))
            .map(|f| f.rate)
            .sum();
        (used / self.links[l.0].capacity).min(1.0)
    }

    /// Apply progress since the last update at current rates.
    pub fn advance(&mut self, now: SimTime) {
        debug_assert!(now >= self.last_update, "network time went backwards");
        let dt = now.saturating_since(self.last_update).as_secs_f64();
        if dt > 0.0 {
            for f in self.flows.values_mut() {
                let step = (f.rate * dt).min(f.remaining);
                f.remaining -= step;
                self.bytes_delivered += step;
            }
        }
        self.last_update = now;
    }

    /// Start a flow of `bytes` over `links` (empty = loopback, infinite
    /// rate is capped by `rate_cap`). Advances, inserts, recomputes fair
    /// shares and bumps the epoch.
    ///
    /// Panics on duplicate id, non-positive byte count, or unknown link.
    pub fn start_flow(&mut self, now: SimTime, id: FlowId, bytes: f64, links: Vec<LinkId>, rate_cap: f64) {
        assert!(bytes.is_finite() && bytes > 0.0, "invalid flow size {bytes}");
        assert!(rate_cap > 0.0);
        for l in &links {
            assert!(l.0 < self.links.len(), "unknown link {l:?}");
        }
        self.advance(now);
        let prev = self.flows.insert(id, Flow { remaining: bytes, links, rate_cap, rate: 0.0 });
        assert!(prev.is_none(), "duplicate flow id {id}");
        if let Some(log) = &mut self.flow_log {
            log.starts.insert(id, (now, bytes));
        }
        self.recompute();
        self.epoch += 1;
    }

    /// Cancel a flow; returns remaining bytes if it existed.
    pub fn cancel(&mut self, now: SimTime, id: FlowId) -> Option<f64> {
        self.advance(now);
        let f = self.flows.remove(&id);
        if f.is_some() {
            if let Some(log) = &mut self.flow_log {
                log.starts.remove(&id);
            }
            self.recompute();
            self.epoch += 1;
        }
        f.map(|f| f.remaining)
    }

    /// Earliest-finishing flow and its completion time, if any.
    ///
    /// Completion instants round *up* (+1 ns slack) so advancing to them
    /// always clears the flow — see `BYTES_EPS`.
    pub fn next_completion(&self, now: SimTime) -> Option<(FlowId, SimTime)> {
        self.flows
            .iter()
            .filter(|(_, f)| f.rate > 0.0)
            .map(|(&id, f)| (id, f.remaining / f.rate))
            .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)))
            // simlint: allow(R3) non-negative finite seconds -> ns; ceil lands past completion
            .map(|(id, dt)| (id, now + SimDuration((dt.max(0.0) * 1e9).ceil() as u64 + 1)))
    }

    /// Remove and return (sorted) every flow whose remaining bytes reached
    /// zero at `now`; recomputes shares and bumps the epoch if any finished.
    pub fn take_finished(&mut self, now: SimTime) -> Vec<FlowId> {
        self.advance(now);
        // BTreeMap iteration is id-ordered, so `done` comes out sorted.
        let done: Vec<FlowId> = self
            .flows
            .iter()
            .filter(|(_, f)| f.remaining <= BYTES_EPS)
            .map(|(&id, _)| id)
            .collect();
        for id in &done {
            self.flows.remove(id);
            if let Some(log) = &mut self.flow_log {
                if let Some((start, bytes)) = log.starts.remove(id) {
                    log.records.push(FlowRecord { id: *id, start, end: now, bytes });
                }
            }
        }
        if !done.is_empty() {
            self.recompute();
            self.epoch += 1;
        }
        done
    }

    /// Progressive-filling max-min fair allocation.
    ///
    /// O(iterations × links × flows); iterations ≤ number of links + flows.
    /// Flow/link counts in this codebase are small (≲ hundreds), so the
    /// simple exact algorithm beats maintaining incremental state.
    fn recompute(&mut self) {
        // Snapshot per-flow state into index-parallel vectors once. `flows`
        // is a BTreeMap, so the ids arrive sorted and every pass below is
        // order-deterministic; the solver then runs on plain vectors (no
        // map lookups, no per-freeze `links.clone()`), and the single
        // write-back at the end is the only mutation.
        let ids: Vec<FlowId> = self.flows.keys().copied().collect();
        let links_of: Vec<Vec<LinkId>> =
            ids.iter().map(|id| self.flows[id].links.clone()).collect();
        let caps: Vec<f64> = ids.iter().map(|id| self.flows[id].rate_cap).collect();
        let mut rates = vec![0.0f64; ids.len()];
        let mut frozen = vec![false; ids.len()];
        let mut link_load = vec![0.0f64; self.links.len()]; // frozen rate sum
        let mut unfrozen_count = vec![0usize; self.links.len()];
        for links in &links_of {
            for l in links {
                unfrozen_count[l.0] += 1;
            }
        }
        let mut remaining_flows = ids.len();
        while remaining_flows > 0 {
            // Fair share offered by each constraining link.
            let mut best_share = f64::INFINITY;
            for (i, link) in self.links.iter().enumerate() {
                if unfrozen_count[i] > 0 {
                    let share = (link.capacity - link_load[i]).max(0.0) / unfrozen_count[i] as f64;
                    if share < best_share {
                        best_share = share;
                    }
                }
            }
            // Flow caps may bind before any link does: freeze cap-limited
            // flows at their caps and iterate. (The cap test is against the
            // fixed `best_share`, so freezing within the pass cannot change
            // which flows qualify.)
            let mut capped_any = false;
            for k in 0..ids.len() {
                if !frozen[k] && caps[k] <= best_share {
                    rates[k] = caps[k];
                    frozen[k] = true;
                    remaining_flows -= 1;
                    capped_any = true;
                    for l in &links_of[k] {
                        link_load[l.0] += caps[k];
                        unfrozen_count[l.0] -= 1;
                    }
                }
            }
            if capped_any {
                continue;
            }
            if !best_share.is_finite() {
                // Remaining flows traverse no constrained link (loopback):
                // they run at their rate caps.
                for k in 0..ids.len() {
                    if !frozen[k] {
                        rates[k] = caps[k];
                        frozen[k] = true;
                    }
                }
                break;
            }
            // Freeze the flows on (one of) the bottleneck link(s).
            let mut froze_any = false;
            for (i, link) in self.links.iter().enumerate() {
                if unfrozen_count[i] == 0 {
                    continue;
                }
                let share = (link.capacity - link_load[i]).max(0.0) / unfrozen_count[i] as f64;
                if share <= best_share * (1.0 + 1e-12) {
                    // Freeze all unfrozen flows crossing link i.
                    for k in 0..ids.len() {
                        if frozen[k] || !links_of[k].iter().any(|l| l.0 == i) {
                            continue;
                        }
                        rates[k] = best_share;
                        frozen[k] = true;
                        remaining_flows -= 1;
                        froze_any = true;
                        for l in &links_of[k] {
                            link_load[l.0] += best_share;
                            unfrozen_count[l.0] -= 1;
                        }
                    }
                }
            }
            debug_assert!(froze_any, "progressive filling made no progress");
            if !froze_any {
                break; // defensive: avoid an infinite loop in release builds
            }
        }
        for (k, id) in ids.iter().enumerate() {
            if let Some(f) = self.flows.get_mut(id) {
                f.rate = rates[k];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    /// One link of 10 bytes/s shared by two flows → 5 each.
    #[test]
    fn equal_share_on_single_link() {
        let mut n = Network::new();
        let l = n.add_link_bytes(10.0);
        n.start_flow(t(0.0), 1, 100.0, vec![l], f64::INFINITY);
        n.start_flow(t(0.0), 2, 100.0, vec![l], f64::INFINITY);
        assert!((n.flow_rate(1) - 5.0).abs() < 1e-9);
        assert!((n.flow_rate(2) - 5.0).abs() < 1e-9);
        assert!((n.link_utilization(l) - 1.0).abs() < 1e-9);
    }

    /// Classic max-min: flow A crosses both links, B only link1, C only
    /// link2. cap1=10, cap2=20 → A=5, B=5, C=15.
    #[test]
    fn max_min_textbook_example() {
        let mut n = Network::new();
        let l1 = n.add_link_bytes(10.0);
        let l2 = n.add_link_bytes(20.0);
        n.start_flow(t(0.0), 1, 1e9, vec![l1, l2], f64::INFINITY); // A
        n.start_flow(t(0.0), 2, 1e9, vec![l1], f64::INFINITY); // B
        n.start_flow(t(0.0), 3, 1e9, vec![l2], f64::INFINITY); // C
        assert!((n.flow_rate(1) - 5.0).abs() < 1e-9);
        assert!((n.flow_rate(2) - 5.0).abs() < 1e-9);
        assert!((n.flow_rate(3) - 15.0).abs() < 1e-9);
    }

    #[test]
    fn flow_log_records_completed_transfers_only() {
        let mut n = Network::new();
        let l = n.add_link_bytes(10.0);
        n.enable_flow_log();
        n.enable_flow_log(); // idempotent
        n.start_flow(t(0.0), 1, 10.0, vec![l], f64::INFINITY);
        n.start_flow(t(0.0), 2, 30.0, vec![l], f64::INFINITY);
        n.start_flow(t(0.0), 3, 5.0, vec![l], f64::INFINITY);
        assert!(n.cancel(t(0.1), 3).is_some()); // cancelled → not logged
        let (_, at1) = n.next_completion(t(0.1)).unwrap();
        n.take_finished(at1);
        let (_, at2) = n.next_completion(at1).unwrap();
        n.take_finished(at2);
        let log = n.flow_log();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].id, 1);
        assert_eq!(log[0].start, t(0.0));
        assert_eq!(log[0].end, at1);
        assert!((log[0].bytes - 10.0).abs() < 1e-9);
        assert_eq!(log[1].id, 2);
        // disabled by default
        let mut m = Network::new();
        let l = m.add_link_bytes(10.0);
        m.start_flow(t(0.0), 1, 10.0, vec![l], f64::INFINITY);
        let (_, at) = m.next_completion(t(0.0)).unwrap();
        m.take_finished(at);
        assert!(m.flow_log().is_empty());
    }

    #[test]
    fn rate_cap_binds() {
        let mut n = Network::new();
        let l = n.add_link_bytes(10.0);
        n.start_flow(t(0.0), 1, 1e9, vec![l], 2.0);
        n.start_flow(t(0.0), 2, 1e9, vec![l], f64::INFINITY);
        assert!((n.flow_rate(1) - 2.0).abs() < 1e-9);
        assert!((n.flow_rate(2) - 8.0).abs() < 1e-9);
    }

    #[test]
    fn completion_and_speedup() {
        let mut n = Network::new();
        let l = n.add_link_bytes(10.0);
        n.start_flow(t(0.0), 1, 10.0, vec![l], f64::INFINITY);
        n.start_flow(t(0.0), 2, 30.0, vec![l], f64::INFINITY);
        let (id, at) = n.next_completion(t(0.0)).unwrap();
        assert_eq!(id, 1);
        assert!((at.as_secs_f64() - 2.0).abs() < 1e-8);
        assert_eq!(n.take_finished(at), vec![1]);
        // flow 2 has 20 left, now at 10/s → finishes at t=4
        let (id, at) = n.next_completion(at).unwrap();
        assert_eq!(id, 2);
        assert!((at.as_secs_f64() - 4.0).abs() < 1e-8);
    }

    #[test]
    fn loopback_flow_runs_at_cap() {
        let mut n = Network::new();
        n.start_flow(t(0.0), 1, 100.0, vec![], 50.0);
        assert!((n.flow_rate(1) - 50.0).abs() < 1e-9);
        let (_, at) = n.next_completion(t(0.0)).unwrap();
        assert!((at.as_secs_f64() - 2.0).abs() < 1e-8);
    }

    #[test]
    fn cancel_releases_bandwidth() {
        let mut n = Network::new();
        let l = n.add_link_bytes(10.0);
        n.start_flow(t(0.0), 1, 100.0, vec![l], f64::INFINITY);
        n.start_flow(t(0.0), 2, 100.0, vec![l], f64::INFINITY);
        let rem = n.cancel(t(1.0), 1).unwrap();
        assert!((rem - 95.0).abs() < 1e-9);
        assert!((n.flow_rate(2) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn bits_to_bytes_conversion_matches_iperf() {
        let mut n = Network::new();
        // the paper's Edison NIC: 100 Mbps at 93.9 % TCP efficiency
        let l = n.add_link_bps(100.0e6, 0.939);
        // 1 GB transfer (the §4.4 iperf experiment)
        n.start_flow(t(0.0), 1, 1e9, vec![l], f64::INFINITY);
        let (_, at) = n.next_completion(t(0.0)).unwrap();
        // 1e9 bytes / (100e6*0.939/8) ≈ 85.2 s
        assert!((at.as_secs_f64() - 85.2).abs() < 0.1, "t={at}");
    }

    #[test]
    fn epoch_advances_on_every_mutation() {
        let mut n = Network::new();
        let l = n.add_link_bytes(10.0);
        let e0 = n.epoch();
        n.start_flow(t(0.0), 1, 10.0, vec![l], f64::INFINITY);
        assert!(n.epoch() > e0);
        let e1 = n.epoch();
        n.take_finished(t(1.0));
        assert!(n.epoch() > e1);
    }

    #[test]
    fn work_conservation() {
        // flows well above BYTES_EPS (real transfers are ≥ hundreds of
        // bytes; the epsilon only absorbs sub-nanosecond rate residue)
        let mut n = Network::new();
        let l = n.add_link_bytes(700.0);
        let mut now = t(0.0);
        let mut total = 0.0;
        for i in 0..20 {
            let bytes = 500.0 + 100.0 * i as f64;
            n.start_flow(now, i, bytes, vec![l], f64::INFINITY);
            total += bytes;
            now = now + SimDuration::from_millis(333);
            n.take_finished(now);
        }
        while let Some((_, at)) = n.next_completion(now) {
            now = at;
            n.take_finished(now);
        }
        assert!(n.is_empty());
        assert!(
            (n.bytes_delivered() - total).abs() < 8.0 * 20.0,
            "delivered {} vs {total}",
            n.bytes_delivered()
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Max-min invariant 1: no link is over capacity.
        /// Invariant 2: every flow is bottlenecked — it either runs at its
        /// cap or crosses at least one saturated link.
        #[test]
        fn maxmin_invariants(
            caps in proptest::collection::vec(1.0f64..100.0, 1..6),
            flows in proptest::collection::vec(
                (proptest::collection::vec(0usize..6, 1..4), 0.5f64..200.0),
                1..12,
            ),
        ) {
            let mut n = Network::new();
            let links: Vec<LinkId> = caps.iter().map(|&c| n.add_link_bytes(c)).collect();
            let t0 = SimTime::ZERO;
            let mut used = 0u64;
            for (path, cap) in &flows {
                let mut ls: Vec<LinkId> = path
                    .iter()
                    .filter(|&&i| i < links.len())
                    .map(|&i| links[i])
                    .collect();
                // Link order is immaterial to the fluid model; a flow must
                // not list the same link twice.
                ls.sort_unstable();
                ls.dedup();
                n.start_flow(t0, used, 1e9, ls, *cap);
                used += 1;
            }
            // Invariant 1: link loads within capacity (+slack).
            for (i, &c) in caps.iter().enumerate() {
                let util = n.link_utilization(links[i]);
                prop_assert!(util <= 1.0 + 1e-9, "link {i} util {util}");
                let _ = c;
            }
            // Invariant 2: each flow is either capped or crosses a
            // saturated link.
            for id in 0..used {
                let rate = n.flow_rate(id);
                prop_assert!(rate > 0.0, "flow {id} starved");
                let capped = {
                    let f = n.remaining(id).unwrap();
                    let _ = f;
                    // recover cap from input order
                    (rate - flows[id as usize].1).abs() < 1e-6
                };
                if !capped {
                    let path = &flows[id as usize].0;
                    let mut bottlenecked = path.is_empty();
                    for &i in path {
                        if i < links.len() && n.link_utilization(links[i]) > 1.0 - 1e-6 {
                            bottlenecked = true;
                        }
                    }
                    prop_assert!(bottlenecked, "flow {id} rate {rate} neither capped nor bottlenecked");
                }
            }
        }
    }
}
