//! Snapshot-rate link gauge — the cheap sibling of [`crate::Network`].
//!
//! The exact max-min solver recomputes every flow's rate on every mutation
//! (O(links × flows)), which is the right tool for MapReduce's few large
//! shuffle flows but far too expensive for the web experiments, where
//! thousands of small reply transfers per second are in flight. The gauge
//! instead *freezes each flow's rate at start time*:
//!
//! ```text
//! rate = min over path links of  capacity_l / (active_l + 1)
//! ```
//!
//! a standard TCP "snapshot" approximation. Rates are not re-adjusted when
//! other flows come and go, so completions never need invalidation — a flow
//! is scheduled once. Under heavy load the snapshot rate systematically
//! reflects contention at admission, which is what drives the paper's
//! delay-vs-load curves (Figures 7–9).
//!
//! The ablation bench `bench/benches/ablation_network.rs` quantifies the
//! accuracy/cost trade against the exact solver.

use crate::network::LinkId;
use edison_simcore::time::SimDuration;

/// Per-link active-flow counters with frozen-rate admission. See module docs.
#[derive(Debug, Clone, Default)]
pub struct LinkGauge {
    caps: Vec<f64>,   // bytes/s
    active: Vec<u32>, // flows currently crossing the link
}

impl LinkGauge {
    /// Empty gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mirror a link (same ids as the [`crate::Topology`] that created it).
    pub fn add_link_bps(&mut self, capacity_bps: f64, efficiency: f64) -> LinkId {
        assert!(capacity_bps > 0.0 && efficiency > 0.0 && efficiency <= 1.0);
        self.caps.push(capacity_bps * efficiency / 8.0);
        self.active.push(0);
        LinkId(self.caps.len() - 1)
    }

    /// Build a gauge mirroring every link of an existing exact network.
    pub fn mirror(net: &crate::Network) -> Self {
        let mut g = LinkGauge::new();
        for i in 0.. {
            let l = LinkId(i);
            if i >= net.link_count() {
                break;
            }
            g.caps.push(net.link_capacity(l));
            g.active.push(0);
        }
        g
    }

    /// Admit a flow over `path`; returns its frozen rate (bytes/s).
    ///
    /// An empty path (loopback) returns `f64::INFINITY` — the caller should
    /// apply its own floor (e.g. memory bandwidth).
    pub fn begin(&mut self, path: &[LinkId]) -> f64 {
        let mut rate = f64::INFINITY;
        for l in path {
            self.active[l.0] += 1;
            let r = self.caps[l.0] / self.active[l.0] as f64;
            rate = rate.min(r);
        }
        rate
    }

    /// Transfer time for `bytes` over `path` at the frozen admission rate.
    /// Combines [`begin`](Self::begin) with a byte count; the caller must
    /// still call [`end`](Self::end) when the transfer completes.
    pub fn begin_transfer(&mut self, path: &[LinkId], bytes: f64) -> SimDuration {
        let rate = self.begin(path);
        if rate.is_finite() {
            SimDuration::from_secs_f64(bytes / rate)
        } else {
            SimDuration::ZERO
        }
    }

    /// Release a flow's link claims.
    pub fn end(&mut self, path: &[LinkId]) {
        for l in path {
            debug_assert!(self.active[l.0] > 0, "gauge underflow on {l:?}");
            self.active[l.0] = self.active[l.0].saturating_sub(1);
        }
    }

    /// Flows currently crossing a link.
    pub fn active_on(&self, l: LinkId) -> u32 {
        self.active[l.0]
    }

    /// Instantaneous "pressure" on a link: active flows × unit demand over
    /// capacity; ≥ 1.0 means the link is saturated under the snapshot model.
    pub fn pressure(&self, l: LinkId, per_flow_demand: f64) -> f64 {
        self.active[l.0] as f64 * per_flow_demand / self.caps[l.0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lone_flow_gets_full_capacity() {
        let mut g = LinkGauge::new();
        let l = g.add_link_bps(80.0, 1.0); // 10 bytes/s
        let r = g.begin(&[l]);
        assert!((r - 10.0).abs() < 1e-12);
        g.end(&[l]);
        assert_eq!(g.active_on(l), 0);
    }

    #[test]
    fn rates_freeze_at_admission() {
        let mut g = LinkGauge::new();
        let l = g.add_link_bps(80.0, 1.0);
        let r1 = g.begin(&[l]);
        let r2 = g.begin(&[l]);
        let r3 = g.begin(&[l]);
        assert!((r1 - 10.0).abs() < 1e-12);
        assert!((r2 - 5.0).abs() < 1e-12);
        assert!((r3 - 10.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn bottleneck_is_min_across_path() {
        let mut g = LinkGauge::new();
        let fat = g.add_link_bps(800.0, 1.0); // 100 B/s
        let thin = g.add_link_bps(80.0, 1.0); // 10 B/s
        let r = g.begin(&[fat, thin]);
        assert!((r - 10.0).abs() < 1e-12);
    }

    #[test]
    fn transfer_time_and_loopback() {
        let mut g = LinkGauge::new();
        let l = g.add_link_bps(80.0, 1.0);
        let t = g.begin_transfer(&[l], 100.0);
        assert!((t.as_secs_f64() - 10.0).abs() < 1e-9);
        let t0 = g.begin_transfer(&[], 100.0);
        assert_eq!(t0, SimDuration::ZERO);
    }

    #[test]
    fn end_releases_capacity() {
        let mut g = LinkGauge::new();
        let l = g.add_link_bps(80.0, 1.0);
        let path = [l];
        g.begin(&path);
        g.begin(&path);
        g.end(&path);
        let r = g.begin(&path);
        assert!((r - 5.0).abs() < 1e-12, "one stale flow remains: {r}");
    }
}
