//! # edison-net
//!
//! Flow-level network fabric for the cluster experiments.
//!
//! Transfers are modelled as *fluid flows* over a graph of directed links;
//! concurrent flows share bandwidth by **max-min fairness** (progressive
//! filling), the standard fluid approximation of long-lived TCP. Propagation
//! latency rides on top as a per-path constant taken from the paper's ping
//! measurements (§4.4: 0.24 ms Dell–Dell, 0.8 ms Dell–Edison, 1.3 ms
//! Edison–Edison round trips).
//!
//! * [`network::Network`] — links + flows + the fair-share solver, with the
//!   same epoch-based completion-event protocol as
//!   `edison_simcore::fluid::FluidResource`.
//! * [`topology::Topology`] — the concrete two-room topology of the paper's
//!   testbed: per-host full-duplex NIC links, non-blocking in-room
//!   switching, and a 1 Gbps inter-room uplink.

pub mod gauge;
pub mod network;
pub mod topology;

pub use gauge::LinkGauge;
pub use network::{FlowId, LinkId, Network};
pub use topology::{GroupId, HostId, Topology};
