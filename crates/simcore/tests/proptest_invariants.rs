//! Property tests of the kernel's foundational invariants.

use edison_simcore::energy::StepIntegrator;
use edison_simcore::fluid::FluidResource;
use edison_simcore::queue::FcfsQueue;
use edison_simcore::time::{SimDuration, SimTime};
use edison_simcore::{Ctx, Model, Simulation};
use proptest::prelude::*;

/// World that records delivery order for the ordering property.
struct OrderCheck {
    last: SimTime,
    delivered: Vec<u32>,
}

impl Model for OrderCheck {
    type Event = u32;
    fn handle(&mut self, now: SimTime, ev: u32, _ctx: &mut Ctx<u32>) {
        assert!(now >= self.last, "time went backwards");
        self.last = now;
        self.delivered.push(ev);
    }
}

proptest! {
    /// Events are always delivered in non-decreasing time order, whatever
    /// the insertion order, and nothing is lost.
    #[test]
    fn event_delivery_is_time_ordered(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut sim = Simulation::new(OrderCheck { last: SimTime::ZERO, delivered: vec![] });
        for (i, &t) in times.iter().enumerate() {
            sim.schedule_at(SimTime(t), i as u32);
        }
        sim.run();
        prop_assert_eq!(sim.world().delivered.len(), times.len());
        // equal timestamps keep insertion order (stable tie-break)
        let mut seen = std::collections::HashMap::new();
        for &id in &sim.world().delivered {
            let t = times[id as usize];
            if let Some(&prev_id) = seen.get(&t) {
                prop_assert!(id > prev_id, "tie at t={t} broke FIFO: {prev_id} then {id}");
            }
            seen.insert(t, id);
        }
    }

    /// Fluid resources conserve work exactly: everything submitted is
    /// eventually completed, no more, no less.
    #[test]
    fn fluid_conserves_work(
        capacity in 1.0f64..1000.0,
        cap_frac in 0.05f64..1.0,
        jobs in proptest::collection::vec((1.0f64..500.0, 0u64..10_000), 1..60),
    ) {
        let per_task = (capacity * cap_frac).max(0.001);
        let mut r = FluidResource::new(capacity, per_task);
        let mut submitted = 0.0;
        let mut now = SimTime::ZERO;
        for (i, &(work, gap_us)) in jobs.iter().enumerate() {
            now = now + SimDuration::from_micros(gap_us);
            r.advance(now);
            r.take_finished(now);
            r.add(now, i as u64, work);
            submitted += work;
        }
        let mut guard = 0;
        while let Some((_, at)) = r.next_completion(now) {
            now = at;
            r.take_finished(now);
            guard += 1;
            prop_assert!(guard < 10_000, "drain did not terminate");
        }
        prop_assert!(r.is_empty());
        prop_assert!((r.work_done() - submitted).abs() < 1e-3 * submitted.max(1.0),
            "done {} vs submitted {}", r.work_done(), submitted);
    }

    /// FCFS queues never lose or duplicate jobs and never exceed their
    /// server count.
    #[test]
    fn fcfs_conserves_jobs(
        servers in 1usize..5,
        arrivals in proptest::collection::vec((0u64..10_000, 1u64..500), 1..80),
    ) {
        let mut q = FcfsQueue::new(servers);
        let mut events: Vec<(SimTime, bool, u64)> = Vec::new(); // (time, is_completion, job)
        let mut pending: std::collections::BinaryHeap<std::cmp::Reverse<(SimTime, u64)>> =
            Default::default();
        let mut sorted = arrivals.clone();
        sorted.sort();
        let mut started = 0u64;
        for (i, &(at, dur)) in sorted.iter().enumerate() {
            let now = SimTime::from_secs(at);
            // drain completions before this arrival
            while let Some(&std::cmp::Reverse((t, _))) = pending.peek() {
                if t > now { break; }
                let std::cmp::Reverse((t, j)) = pending.pop().unwrap();
                events.push((t, true, j));
                if let Some((nj, nt)) = q.complete(t) {
                    pending.push(std::cmp::Reverse((nt, nj)));
                    started += 1;
                }
            }
            if let Some((j, t)) = q.submit(now, i as u64, SimDuration::from_secs(dur)) {
                pending.push(std::cmp::Reverse((t, j)));
                started += 1;
            }
            prop_assert!(q.in_service() <= servers);
        }
        // drain everything
        while let Some(std::cmp::Reverse((t, j))) = pending.pop() {
            events.push((t, true, j));
            if let Some((nj, nt)) = q.complete(t) {
                pending.push(std::cmp::Reverse((nt, nj)));
                started += 1;
            }
        }
        prop_assert_eq!(q.completed() as usize, sorted.len(), "all jobs served");
        prop_assert_eq!(started as usize, sorted.len());
    }

    /// The step integrator is exact for any piecewise-constant signal:
    /// integral equals the hand-computed sum of segments.
    #[test]
    fn integrator_matches_manual_sum(
        segments in proptest::collection::vec((0.0f64..500.0, 1u64..1_000), 1..50),
    ) {
        let mut p = StepIntegrator::new(SimTime::ZERO, 0.0);
        let mut now = SimTime::ZERO;
        let mut manual = 0.0;
        let mut value = 0.0;
        for &(v, ms) in &segments {
            let next = now + SimDuration::from_millis(ms);
            manual += value * SimDuration::from_millis(ms).as_secs_f64();
            p.set(next, v);
            now = next;
            value = v;
        }
        prop_assert!((p.integral_at(now) - manual).abs() < 1e-6 * manual.max(1.0));
    }

    /// Energy is monotone non-decreasing in time for non-negative power.
    #[test]
    fn energy_is_monotone(powers in proptest::collection::vec(0.0f64..200.0, 1..40)) {
        let mut p = StepIntegrator::new(SimTime::ZERO, powers[0]);
        let mut last = 0.0;
        for (i, &w) in powers.iter().enumerate() {
            let t = SimTime::from_secs((i + 1) as u64);
            p.set(t, w);
            let e = p.integral_at(t);
            prop_assert!(e >= last - 1e-9);
            last = e;
        }
    }
}
