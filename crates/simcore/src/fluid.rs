//! Processor-sharing "fluid" resources.
//!
//! A [`FluidResource`] serves a set of concurrent tasks at a total rate of at
//! most `capacity` work-units per second, with no task exceeding
//! `per_task_cap`. Between mutations the active task set is constant, so
//! every task progresses at the same, exactly computable rate
//!
//! ```text
//! rate(n) = min(per_task_cap, capacity / n)
//! ```
//!
//! and the next completion time is known in closed form — no time-stepping.
//! This models:
//!
//! * a **CPU**: capacity = aggregate DMIPS of the node, per-task cap = DMIPS
//!   of one hardware thread (a single thread cannot use two cores);
//! * a **network link**: capacity = line rate in bytes/s, per-task cap = ∞
//!   (one flow may saturate a link).
//!
//! ### Event invalidation protocol
//!
//! The owning model schedules a tentative completion event carrying the
//! resource's [`epoch`](FluidResource::epoch). Every mutation (task added or
//! removed) bumps the epoch; stale events are ignored on delivery and the
//! model re-schedules from [`next_completion`](FluidResource::next_completion).
//! The kernel's heap never needs random deletion.

use crate::time::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// Absolute tolerance under which remaining work counts as finished.
///
/// Completion instants are rounded to whole nanoseconds; advancing to a
/// rounded instant can leave up to `rate × 0.5 ns` of residue — ≈4.4e-5 MI
/// at the fastest CPU in the repo (the Dell socket). The epsilon must sit
/// comfortably above that or the completion-event protocol re-schedules
/// the same instant forever. 1e-3 MI ≈ 1000 instructions: far above any
/// rounding residue, far below any modelled task.
const WORK_EPS: f64 = 1e-3;

/// Identifier for a task inside a fluid resource (caller-assigned).
pub type TaskId = u64;

/// A processor-sharing fluid resource. See module docs.
#[derive(Debug, Clone)]
pub struct FluidResource {
    capacity: f64,
    per_task_cap: f64,
    /// Remaining work units per task, ordered by id: progress and
    /// `work_done` float-accumulation visit tasks in the same order on
    /// every run (a `HashMap` here was hasher-order nondeterministic).
    tasks: BTreeMap<TaskId, f64>,
    last_update: SimTime,
    epoch: u64,
    /// Total work completed over the lifetime of the resource.
    work_done: f64,
    /// ∫ utilisation dt (seconds of full-capacity-equivalent use).
    busy_integral: f64,
}

impl FluidResource {
    /// Create a resource with total `capacity` (work-units/second) and a
    /// per-task rate cap (use `f64::INFINITY` for links).
    ///
    /// Panics if `capacity` or `per_task_cap` is not strictly positive.
    pub fn new(capacity: f64, per_task_cap: f64) -> Self {
        assert!(capacity > 0.0, "capacity must be positive");
        assert!(per_task_cap > 0.0, "per-task cap must be positive");
        FluidResource {
            capacity,
            per_task_cap,
            tasks: BTreeMap::new(),
            last_update: SimTime::ZERO,
            epoch: 0,
            work_done: 0.0,
            busy_integral: 0.0,
        }
    }

    /// Total service capacity in work-units/second.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Number of in-flight tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True when no task is in flight.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Mutation epoch, for the completion-event invalidation protocol.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Current per-task service rate (work-units/second); zero when idle.
    pub fn rate_per_task(&self) -> f64 {
        let n = self.tasks.len();
        if n == 0 {
            0.0
        } else {
            self.per_task_cap.min(self.capacity / n as f64)
        }
    }

    /// Instantaneous utilisation in [0, 1].
    pub fn utilization(&self) -> f64 {
        (self.rate_per_task() * self.tasks.len() as f64 / self.capacity).min(1.0)
    }

    /// Total work completed so far (work-units).
    pub fn work_done(&self) -> f64 {
        self.work_done
    }

    /// ∫ utilisation dt in seconds, up to the last `advance`.
    pub fn busy_seconds(&self) -> f64 {
        self.busy_integral
    }

    /// Apply progress between `last_update` and `now` at the current rates.
    ///
    /// Idempotent for equal `now`. Panics in debug builds if time runs
    /// backwards.
    pub fn advance(&mut self, now: SimTime) {
        debug_assert!(now >= self.last_update, "fluid resource time went backwards");
        let dt = now.saturating_since(self.last_update).as_secs_f64();
        if dt > 0.0 {
            let rate = self.rate_per_task();
            if rate > 0.0 {
                let mut done = 0.0;
                for rem in self.tasks.values_mut() {
                    let step = rate * dt;
                    let used = step.min(*rem);
                    *rem -= used;
                    done += used;
                }
                self.work_done += done;
                self.busy_integral += self.utilization() * dt;
            }
        }
        self.last_update = now;
    }

    /// Add a task with `work` units. Advances to `now` first and bumps the
    /// epoch.
    ///
    /// Panics if the id is already in flight or `work` is not finite/positive.
    pub fn add(&mut self, now: SimTime, id: TaskId, work: f64) {
        assert!(work.is_finite() && work > 0.0, "invalid work amount {work}");
        self.advance(now);
        let prev = self.tasks.insert(id, work);
        assert!(prev.is_none(), "duplicate fluid task id {id}");
        self.epoch += 1;
    }

    /// Remove a task regardless of progress (e.g. a cancelled transfer).
    /// Returns its remaining work, or `None` if unknown.
    pub fn cancel(&mut self, now: SimTime, id: TaskId) -> Option<f64> {
        self.advance(now);
        let rem = self.tasks.remove(&id);
        if rem.is_some() {
            self.epoch += 1;
        }
        rem
    }

    /// The next task to finish and its completion time, if any.
    ///
    /// All in-flight tasks share one rate, so the task with the least
    /// remaining work finishes first; ties broken by lowest id for
    /// determinism.
    pub fn next_completion(&self, now: SimTime) -> Option<(TaskId, SimTime)> {
        let rate = self.rate_per_task();
        if rate <= 0.0 {
            return None;
        }
        let (&id, &rem) = self
            .tasks
            .iter()
            .min_by(|a, b| a.1.total_cmp(b.1).then(a.0.cmp(b.0)))?;
        let dt = (rem / rate).max(0.0);
        // Round the completion instant *up* (plus 1 ns of slack) so that
        // advancing to it always clears the task's remaining work; rounding
        // to nearest can land half a nanosecond early and strand residue
        // above any epsilon.
        // simlint: allow(R3) dt is clamped non-negative; ceil keeps the cast in range
        let dt_nanos = (dt * 1e9).ceil() as u64 + 1;
        Some((id, now + SimDuration(dt_nanos)))
    }

    /// Pop every task whose remaining work is (numerically) zero at `now`.
    ///
    /// Call this from the completion-event handler after verifying the epoch;
    /// it advances to `now`, removes finished tasks, and bumps the epoch if
    /// anything was removed. Returned ids are sorted for determinism.
    pub fn take_finished(&mut self, now: SimTime) -> Vec<TaskId> {
        self.advance(now);
        let mut done: Vec<TaskId> = self
            .tasks
            .iter()
            .filter(|&(_, &rem)| rem <= WORK_EPS)
            .map(|(&id, _)| id)
            .collect();
        done.sort_unstable();
        for id in &done {
            self.tasks.remove(id);
        }
        if !done.is_empty() {
            self.epoch += 1;
        }
        done
    }

    /// Remaining work of a task, if in flight (advances nothing).
    pub fn remaining(&self, id: TaskId) -> Option<f64> {
        self.tasks.get(&id).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn single_task_runs_at_cap() {
        // capacity 100/s, cap 10/s per task: a lone task runs at 10/s.
        let mut r = FluidResource::new(100.0, 10.0);
        r.add(t(0.0), 1, 50.0);
        let (id, at) = r.next_completion(t(0.0)).unwrap();
        assert_eq!(id, 1);
        assert!((at.as_secs_f64() - 5.0).abs() < 1e-8);
    }

    #[test]
    fn sharing_splits_capacity() {
        // capacity 10/s, no per-task cap: two tasks get 5/s each.
        let mut r = FluidResource::new(10.0, f64::INFINITY);
        r.add(t(0.0), 1, 10.0);
        r.add(t(0.0), 2, 20.0);
        let (id, at) = r.next_completion(t(0.0)).unwrap();
        assert_eq!(id, 1);
        assert!((at.as_secs_f64() - 2.0).abs() < 1e-8);
        // after task 1 finishes, task 2 speeds up to 10/s with 10 left.
        let done = r.take_finished(at);
        assert_eq!(done, vec![1]);
        let (id2, at2) = r.next_completion(at).unwrap();
        assert_eq!(id2, 2);
        assert!((at2.as_secs_f64() - 3.0).abs() < 1e-8);
    }

    #[test]
    fn late_arrival_slows_existing_task() {
        let mut r = FluidResource::new(10.0, f64::INFINITY);
        r.add(t(0.0), 1, 10.0); // alone: would finish at t=1
        r.add(t(0.5), 2, 10.0); // 1 has 5 left; now both at 5/s
        let (id, at) = r.next_completion(t(0.5)).unwrap();
        assert_eq!(id, 1);
        assert!((at.as_secs_f64() - 1.5).abs() < 1e-8);
    }

    #[test]
    fn epoch_bumps_on_mutation() {
        let mut r = FluidResource::new(1.0, 1.0);
        let e0 = r.epoch();
        r.add(t(0.0), 1, 1.0);
        assert!(r.epoch() > e0);
        let e1 = r.epoch();
        r.cancel(t(0.5), 1);
        assert!(r.epoch() > e1);
        // cancelling a missing task does not bump
        let e2 = r.epoch();
        assert!(r.cancel(t(0.6), 99).is_none());
        assert_eq!(r.epoch(), e2);
    }

    #[test]
    fn utilization_and_busy_integral() {
        let mut r = FluidResource::new(10.0, 5.0);
        assert_eq!(r.utilization(), 0.0);
        r.add(t(0.0), 1, 5.0); // runs at 5/s → 50% utilisation
        assert!((r.utilization() - 0.5).abs() < 1e-12);
        r.advance(t(1.0));
        let done = r.take_finished(t(1.0));
        assert_eq!(done, vec![1]);
        assert!((r.busy_seconds() - 0.5).abs() < 1e-9);
        assert!((r.work_done() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn work_conservation_under_mutation_storm() {
        // total completed work must equal total submitted work.
        let mut r = FluidResource::new(7.0, 3.0);
        let mut now = t(0.0);
        let mut submitted = 0.0;
        for i in 0..50u64 {
            let w = 1.0 + (i % 7) as f64;
            r.add(now, i, w);
            submitted += w;
            now = now + SimDuration::from_millis(137);
            r.advance(now);
            r.take_finished(now);
        }
        // drain
        while let Some((_, at)) = r.next_completion(now) {
            now = at;
            r.take_finished(now);
        }
        assert!(r.is_empty());
        assert!(
            (r.work_done() - submitted).abs() < 1e-3,
            "done {} vs submitted {submitted}",
            r.work_done()
        );
    }

    #[test]
    fn cancel_returns_remaining() {
        let mut r = FluidResource::new(10.0, 10.0);
        r.add(t(0.0), 1, 10.0);
        let rem = r.cancel(t(0.5), 1).unwrap();
        assert!((rem - 5.0).abs() < 1e-9);
        assert!(r.is_empty());
    }

    #[test]
    fn deterministic_tie_break_by_id() {
        let mut r = FluidResource::new(10.0, f64::INFINITY);
        r.add(t(0.0), 7, 5.0);
        r.add(t(0.0), 3, 5.0);
        let (id, _) = r.next_completion(t(0.0)).unwrap();
        assert_eq!(id, 3);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_id_panics() {
        let mut r = FluidResource::new(1.0, 1.0);
        r.add(t(0.0), 1, 1.0);
        r.add(t(0.0), 1, 1.0);
    }
}
