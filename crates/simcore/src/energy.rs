//! Exact integration of piecewise-constant signals over simulated time.
//!
//! The paper's headline metric is *work-done-per-joule*; every cluster
//! experiment integrates each node's power draw (a piecewise-constant
//! function of utilisation) into joules. [`StepIntegrator`] does this
//! exactly: the caller calls [`set`](StepIntegrator::set) whenever the value
//! changes, and reads the running integral at any instant.

use crate::time::SimTime;

/// Integrates a piecewise-constant signal v(t).
///
/// Typical use: `v` is power in watts, the integral is energy in joules.
/// Also used for CPU-utilisation integrals (average utilisation = integral /
/// elapsed) in the Figure 12–17 timelines.
#[derive(Debug, Clone)]
pub struct StepIntegrator {
    last_t: SimTime,
    value: f64,
    integral: f64,
    /// When `Some`, every *change* of the signal is appended as a step point
    /// `(t, new_value)` — the raw material for the Figure 12–17 power
    /// timelines and the telemetry power timeseries. `None` (the default)
    /// costs one branch per `set`.
    trace: Option<Vec<(SimTime, f64)>>,
}

impl StepIntegrator {
    /// Start at time `t0` with initial value `v0`.
    ///
    /// Panics in debug builds if `v0` is not finite — a NaN/∞ integrand
    /// would silently poison every joule figure downstream.
    pub fn new(t0: SimTime, v0: f64) -> Self {
        debug_assert!(v0.is_finite(), "non-finite integrand {v0}");
        StepIntegrator { last_t: t0, value: v0, integral: 0.0, trace: None }
    }

    /// Start recording the step trace; the current `(t, value)` becomes the
    /// first point. Idempotent.
    pub fn enable_trace(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(vec![(self.last_t, self.value)]);
        }
    }

    /// The recorded step points `(t, value)`; empty unless
    /// [`enable_trace`](Self::enable_trace) was called. Consecutive points
    /// always differ in value (redundant `set`s are collapsed).
    pub fn trace(&self) -> &[(SimTime, f64)] {
        self.trace.as_deref().unwrap_or(&[])
    }

    /// Current value of the signal.
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Update the signal to `v` at time `now`, accumulating the segment
    /// since the previous change.
    ///
    /// Panics in debug builds if time runs backwards or `v` is not finite.
    pub fn set(&mut self, now: SimTime, v: f64) {
        debug_assert!(
            now >= self.last_t,
            "integrator time went backwards: {now} < {}",
            self.last_t
        );
        debug_assert!(v.is_finite(), "non-finite integrand {v}");
        self.integral += self.value * now.saturating_since(self.last_t).as_secs_f64();
        if v != self.value {
            if let Some(tr) = &mut self.trace {
                // Same-instant re-set: the later value supersedes the step.
                if tr.last().is_some_and(|&(lt, _)| lt == now) {
                    let i = tr.len() - 1;
                    tr[i].1 = v;
                    // If the rewrite restored the previous value, the step
                    // vanished entirely; drop it to keep neighbours distinct.
                    if i > 0 && tr[i - 1].1 == v {
                        tr.pop();
                    }
                } else {
                    tr.push((now, v));
                }
            }
        }
        self.last_t = now;
        self.value = v;
    }

    /// The integral up to `now`, without changing the signal.
    pub fn integral_at(&self, now: SimTime) -> f64 {
        debug_assert!(now >= self.last_t);
        self.integral + self.value * now.saturating_since(self.last_t).as_secs_f64()
    }

    /// Mean value of the signal over `[t0, now]`.
    ///
    /// Returns the current value when no time has elapsed.
    pub fn mean_over(&self, t0: SimTime, now: SimTime) -> f64 {
        let span = now.saturating_since(t0).as_secs_f64();
        if span <= 0.0 {
            self.value
        } else {
            self.integral_at(now) / span
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn constant_signal_integrates_linearly() {
        let p = StepIntegrator::new(t(0.0), 52.0); // Dell idle watts
        assert!((p.integral_at(t(10.0)) - 520.0).abs() < 1e-9);
    }

    #[test]
    fn steps_accumulate() {
        // idle 1s at 52 W, busy 2s at 109 W, idle 1s at 52 W (Dell endpoints)
        let mut p = StepIntegrator::new(t(0.0), 52.0);
        p.set(t(1.0), 109.0);
        p.set(t(3.0), 52.0);
        let j = p.integral_at(t(4.0));
        assert!((j - (52.0 + 218.0 + 52.0)).abs() < 1e-9);
    }

    #[test]
    fn redundant_sets_are_harmless() {
        let mut p = StepIntegrator::new(t(0.0), 5.0);
        p.set(t(1.0), 5.0);
        p.set(t(1.0), 5.0);
        assert!((p.integral_at(t(2.0)) - 10.0).abs() < 1e-12);
    }

    /// The determinism/unit-safety contract: a backwards `set` is a bug in
    /// the caller's event ordering and must be caught loudly in debug
    /// builds (release builds saturate to a zero-length segment).
    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "integrator time went backwards"))]
    fn backwards_time_is_caught_in_debug() {
        let mut p = StepIntegrator::new(t(5.0), 1.0);
        p.set(t(4.0), 2.0);
        // Release builds fall through: the backwards segment contributes 0 J.
        assert_eq!(p.integral_at(t(5.0)), 0.0 + 2.0 * 1.0);
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "non-finite integrand"))]
    fn non_finite_integrand_is_caught_in_debug() {
        let mut p = StepIntegrator::new(t(0.0), 1.0);
        p.set(t(1.0), f64::NAN);
        assert!(p.integral_at(t(2.0)).is_nan());
    }

    #[test]
    fn trace_records_value_changes_only() {
        let mut p = StepIntegrator::new(t(0.0), 5.0);
        p.enable_trace();
        p.enable_trace(); // idempotent
        p.set(t(1.0), 5.0); // redundant, collapsed
        p.set(t(2.0), 9.0);
        p.set(t(2.0), 11.0); // same-instant re-set supersedes
        p.set(t(3.0), 11.0); // redundant
        p.set(t(4.0), 5.0);
        assert_eq!(
            p.trace(),
            &[(t(0.0), 5.0), (t(2.0), 11.0), (t(4.0), 5.0)]
        );
        // Integral unaffected by tracing: 2s@5 + 2s@11 = 32 up to t=4.
        assert!((p.integral_at(t(4.0)) - 32.0).abs() < 1e-9);
    }

    #[test]
    fn trace_same_instant_revert_drops_step() {
        let mut p = StepIntegrator::new(t(0.0), 5.0);
        p.enable_trace();
        p.set(t(1.0), 9.0);
        p.set(t(1.0), 5.0); // reverted within the same instant
        assert_eq!(p.trace(), &[(t(0.0), 5.0)]);
    }

    #[test]
    fn trace_disabled_is_empty() {
        let mut p = StepIntegrator::new(t(0.0), 1.0);
        p.set(t(1.0), 2.0);
        assert!(p.trace().is_empty());
    }

    #[test]
    fn mean_over_window() {
        let mut p = StepIntegrator::new(t(0.0), 0.0);
        p.set(t(5.0), 10.0);
        // 5s at 0 + 5s at 10 → mean 5 over [0,10]
        assert!((p.mean_over(t(0.0), t(10.0)) - 5.0).abs() < 1e-9);
        // zero-width window returns current value
        assert_eq!(p.mean_over(t(10.0), t(10.0)), 10.0);
    }
}
