//! Metric collection: sample sets, histograms, time series.
//!
//! Every figure in the paper is one of three shapes:
//!
//! * a **scalar table cell** (Tables 2–10) — [`SampleSet`] means/percentiles;
//! * a **curve over a parameter sweep** (Figures 2–9, 18, 19) — one scalar
//!   per sweep point, assembled by the harness;
//! * a **distribution histogram** (Figures 10–11) — [`Histogram`];
//! * a **timeline** (Figures 12–17) — [`TimeSeries`] sampled at 1 s.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// A growing set of f64 samples with summary statistics.
///
/// Samples are stored exactly; at this codebase's scales (≤ a few million
/// request delays) this is cheaper and more faithful than sketches.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SampleSet {
    samples: Vec<f64>,
    #[serde(skip)]
    sorted: bool,
}

impl SampleSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one sample.
    pub fn push(&mut self, v: f64) {
        debug_assert!(v.is_finite(), "non-finite sample {v}");
        self.samples.push(v);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Population standard deviation; 0.0 when fewer than two samples.
    pub fn stddev(&self) -> f64 {
        if self.samples.len() < 2 {
            return 0.0;
        }
        let m = self.mean();
        let var = self.samples.iter().map(|v| (v - m) * (v - m)).sum::<f64>()
            / self.samples.len() as f64;
        var.sqrt()
    }

    /// Smallest sample; 0.0 when empty.
    pub fn min(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().copied().fold(f64::INFINITY, f64::min)
        }
    }

    /// Largest sample; 0.0 when empty.
    pub fn max(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().copied().fold(f64::NEG_INFINITY, f64::max)
        }
    }

    /// The p-th percentile (0 ≤ p ≤ 100) by nearest-rank; 0.0 when empty.
    pub fn percentile(&mut self, p: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        if !self.sorted {
            // total_cmp: NaN-safe total order. `push` debug-asserts finiteness,
            // but release builds must degrade gracefully, not panic mid-report.
            self.samples.sort_by(f64::total_cmp);
            self.sorted = true;
        }
        let rank = ((p / 100.0) * (self.samples.len() as f64 - 1.0)).round() as usize;
        self.samples[rank.min(self.samples.len() - 1)]
    }

    /// Borrow the raw samples.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

/// A fixed-width-bucket histogram over `[lo, hi)` with an overflow bucket.
///
/// Used for the Figure 10/11 response-delay distributions (0–8 s).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    overflow: u64,
    underflow: u64,
    count: u64,
}

impl Histogram {
    /// Create a histogram over `[lo, hi)` with `n` equal buckets.
    ///
    /// Panics unless `lo < hi` and `n ≥ 1`.
    pub fn new(lo: f64, hi: f64, n: usize) -> Self {
        assert!(lo < hi && n >= 1, "bad histogram bounds");
        Histogram { lo, hi, buckets: vec![0; n], overflow: 0, underflow: 0, count: 0 }
    }

    /// Record one value.
    pub fn record(&mut self, v: f64) {
        self.count += 1;
        if v < self.lo {
            self.underflow += 1;
        } else if v >= self.hi {
            self.overflow += 1;
        } else {
            let idx = ((v - self.lo) / (self.hi - self.lo) * self.buckets.len() as f64) as usize;
            let idx = idx.min(self.buckets.len() - 1);
            self.buckets[idx] += 1;
        }
    }

    /// Total recorded values (including under/overflow).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Values below `lo` / at-or-above `hi`.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }
    /// Values at or above `hi`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Iterate `(bucket_midpoint, count)` pairs.
    pub fn bars(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        let w = (self.hi - self.lo) / self.buckets.len() as f64;
        self.buckets
            .iter()
            .enumerate()
            .map(move |(i, &c)| (self.lo + (i as f64 + 0.5) * w, c))
    }

    /// The count in the bucket containing `v`, or 0 outside range.
    pub fn count_at(&self, v: f64) -> u64 {
        if v < self.lo || v >= self.hi {
            return 0;
        }
        let idx = ((v - self.lo) / (self.hi - self.lo) * self.buckets.len() as f64) as usize;
        self.buckets[idx.min(self.buckets.len() - 1)]
    }
}

/// A time-stamped series of f64 samples.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a point; time must be non-decreasing (debug-asserted).
    pub fn push(&mut self, t: SimTime, v: f64) {
        debug_assert!(
            self.points.last().map_or(true, |&(lt, _)| lt <= t),
            "time series must be appended in order"
        );
        self.points.push((t, v));
    }

    /// All points.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no point was recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Maximum value; 0.0 when empty.
    pub fn max_value(&self) -> f64 {
        self.points.iter().map(|&(_, v)| v).fold(f64::NEG_INFINITY, f64::max).max(0.0)
    }

    /// Mean of the values (unweighted by time); 0.0 when empty.
    pub fn mean_value(&self) -> f64 {
        if self.points.is_empty() {
            0.0
        } else {
            self.points.iter().map(|&(_, v)| v).sum::<f64>() / self.points.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampleset_summary() {
        let mut s = SampleSet::new();
        for v in [1.0, 2.0, 3.0, 4.0, 5.0] {
            s.push(v);
        }
        assert_eq!(s.len(), 5);
        assert!((s.mean() - 3.0).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 5.0);
        assert_eq!(s.percentile(0.0), 1.0);
        assert_eq!(s.percentile(50.0), 3.0);
        assert_eq!(s.percentile(100.0), 5.0);
        assert!((s.stddev() - (2.0f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn sampleset_empty_is_zeroes() {
        let mut s = SampleSet::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.percentile(50.0), 0.0);
    }

    #[test]
    fn percentile_after_interleaved_pushes() {
        let mut s = SampleSet::new();
        s.push(10.0);
        assert_eq!(s.percentile(50.0), 10.0);
        s.push(0.0);
        s.push(20.0);
        assert_eq!(s.percentile(50.0), 10.0); // re-sorts after new pushes
    }

    #[test]
    fn percentile_survives_nan_samples() {
        // A NaN can only arrive through release-mode arithmetic upstream
        // (`push` debug-asserts finiteness), but percentile must degrade
        // gracefully rather than panic mid-report: total_cmp sorts NaN last.
        let mut s = SampleSet { samples: vec![2.0, f64::NAN, 1.0], sorted: false };
        assert_eq!(s.percentile(0.0), 1.0);
        assert_eq!(s.percentile(50.0), 2.0);
        assert!(s.percentile(100.0).is_nan());
    }

    #[test]
    fn histogram_buckets() {
        let mut h = Histogram::new(0.0, 8.0, 80); // Fig 10/11 shape: 0.1 s buckets
        h.record(0.05);
        h.record(0.95);
        h.record(1.0);
        h.record(7.99);
        h.record(8.0); // overflow
        h.record(-1.0); // underflow
        assert_eq!(h.count(), 6);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.count_at(0.05), 1);
        assert_eq!(h.count_at(1.02), 1);
        let total: u64 = h.bars().map(|(_, c)| c).sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn timeseries_basics() {
        let mut ts = TimeSeries::new();
        ts.push(SimTime::from_secs(0), 10.0);
        ts.push(SimTime::from_secs(1), 30.0);
        ts.push(SimTime::from_secs(2), 20.0);
        assert_eq!(ts.len(), 3);
        assert_eq!(ts.max_value(), 30.0);
        assert!((ts.mean_value() - 20.0).abs() < 1e-12);
    }
}
