//! First-come-first-served queues with `k` parallel servers.
//!
//! Used to model devices whose service discipline is serial rather than
//! processor-sharing: the microSD card and SAS disk (k = 1, or the disk's
//! effective command depth) and the MySQL database servers (k = worker
//! threads).
//!
//! The queue does not own the event heap. [`FcfsQueue::submit`] and
//! [`FcfsQueue::complete`] return `(job, completion_time)` pairs that the
//! caller schedules; this keeps the component pure and trivially testable.

use crate::time::{SimDuration, SimTime};
use std::collections::VecDeque;

/// Caller-assigned job identifier.
pub type JobId = u64;

/// A k-server FCFS queue. See module docs.
#[derive(Debug, Clone)]
pub struct FcfsQueue {
    servers: usize,
    busy: usize,
    waiting: VecDeque<(JobId, SimDuration)>,
    /// Completed-job count, for throughput metrics.
    completed: u64,
    /// Σ service time actually dispatched, for utilisation metrics.
    dispatched_service: SimDuration,
    /// Peak queue length observed.
    peak_waiting: usize,
    /// Peak system depth (in service + waiting) observed.
    peak_depth: usize,
}

impl FcfsQueue {
    /// Create a queue with `servers` parallel servers (must be ≥ 1).
    pub fn new(servers: usize) -> Self {
        assert!(servers >= 1, "queue needs at least one server");
        FcfsQueue {
            servers,
            busy: 0,
            waiting: VecDeque::new(),
            completed: 0,
            dispatched_service: SimDuration::ZERO,
            peak_waiting: 0,
            peak_depth: 0,
        }
    }

    /// Number of jobs currently being served.
    pub fn in_service(&self) -> usize {
        self.busy
    }

    /// Number of jobs waiting for a server.
    pub fn queued(&self) -> usize {
        self.waiting.len()
    }

    /// Greatest queue length seen so far.
    pub fn peak_queued(&self) -> usize {
        self.peak_waiting
    }

    /// Total jobs in the system right now: in service plus waiting. This is
    /// the value a queue-depth gauge should export; it counts a cancelled
    /// waiter exactly zero times (see
    /// [`cancel_waiting`](Self::cancel_waiting)).
    pub fn depth(&self) -> usize {
        self.busy + self.waiting.len()
    }

    /// Greatest [`depth`](Self::depth) seen so far.
    pub fn peak_depth(&self) -> usize {
        self.peak_depth
    }

    /// Retract a job that is still **waiting** (not yet dispatched to a
    /// server). Returns `true` if the job was found and removed.
    ///
    /// Depth accounting is exact: a cancelled waiter leaves
    /// [`queued`](Self::queued) / [`depth`](Self::depth) immediately, never
    /// reaches a server, and never counts toward
    /// [`completed`](Self::completed) or
    /// [`dispatched_service`](Self::dispatched_service). Without this, a
    /// model that abandons queued work (a timed-out request retracting its
    /// disk read) would leave the depth gauge permanently inflated — the
    /// drift that made any depth metric a lie. In-service jobs cannot be
    /// cancelled here; their completion event is already on the heap, and the
    /// kernel's epoch-tombstone convention (see `engine` docs) handles those.
    pub fn cancel_waiting(&mut self, job: JobId) -> bool {
        let before = self.waiting.len();
        self.waiting.retain(|&(j, _)| j != job);
        before != self.waiting.len()
    }

    /// Jobs fully served so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Σ service time dispatched to servers so far.
    pub fn dispatched_service(&self) -> SimDuration {
        self.dispatched_service
    }

    /// Submit a job needing `service` time. If a server is free the job
    /// starts immediately and its completion time is returned for
    /// scheduling; otherwise it waits and `None` is returned.
    pub fn submit(&mut self, now: SimTime, job: JobId, service: SimDuration) -> Option<(JobId, SimTime)> {
        let out = if self.busy < self.servers {
            self.busy += 1;
            self.dispatched_service += service;
            Some((job, now + service))
        } else {
            self.waiting.push_back((job, service));
            self.peak_waiting = self.peak_waiting.max(self.waiting.len());
            None
        };
        self.peak_depth = self.peak_depth.max(self.depth());
        out
    }

    /// Record the completion of an in-service job. If another job was
    /// waiting it is dispatched and its `(job, completion_time)` returned for
    /// scheduling.
    ///
    /// Panics in debug builds if no job was in service.
    pub fn complete(&mut self, now: SimTime) -> Option<(JobId, SimTime)> {
        debug_assert!(self.busy > 0, "completion with no job in service");
        self.completed += 1;
        if let Some((job, service)) = self.waiting.pop_front() {
            // The finishing server immediately takes the next job.
            self.dispatched_service += service;
            Some((job, now + service))
        } else {
            self.busy -= 1;
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }
    fn d(s: u64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    #[test]
    fn single_server_serialises() {
        let mut q = FcfsQueue::new(1);
        let first = q.submit(t(0), 1, d(10));
        assert_eq!(first, Some((1, t(10))));
        assert_eq!(q.submit(t(1), 2, d(5)), None);
        assert_eq!(q.submit(t(2), 3, d(1)), None);
        assert_eq!(q.queued(), 2);
        // job 1 done at t=10; job 2 starts then.
        let nxt = q.complete(t(10));
        assert_eq!(nxt, Some((2, t(15))));
        let nxt = q.complete(t(15));
        assert_eq!(nxt, Some((3, t(16))));
        assert_eq!(q.complete(t(16)), None);
        assert_eq!(q.completed(), 3);
        assert_eq!(q.in_service(), 0);
    }

    #[test]
    fn multi_server_parallelism() {
        let mut q = FcfsQueue::new(2);
        assert!(q.submit(t(0), 1, d(10)).is_some());
        assert!(q.submit(t(0), 2, d(10)).is_some());
        assert!(q.submit(t(0), 3, d(10)).is_none());
        assert_eq!(q.in_service(), 2);
        let nxt = q.complete(t(10));
        assert_eq!(nxt, Some((3, t(20))));
    }

    #[test]
    fn fifo_order_preserved() {
        let mut q = FcfsQueue::new(1);
        q.submit(t(0), 10, d(1));
        for j in 11..20 {
            q.submit(t(0), j, d(1));
        }
        let mut order = vec![];
        let mut now = t(1);
        loop {
            match q.complete(now) {
                Some((j, at)) => {
                    order.push(j);
                    now = at;
                }
                None => break,
            }
        }
        assert_eq!(order, (11..20).collect::<Vec<_>>());
    }

    #[test]
    fn peak_queue_tracked() {
        let mut q = FcfsQueue::new(1);
        q.submit(t(0), 1, d(5));
        q.submit(t(0), 2, d(5));
        q.submit(t(0), 3, d(5));
        assert_eq!(q.peak_queued(), 2);
        q.complete(t(5));
        assert_eq!(q.peak_queued(), 2);
    }

    #[test]
    fn dispatched_service_accumulates() {
        let mut q = FcfsQueue::new(1);
        q.submit(t(0), 1, d(3));
        q.submit(t(0), 2, d(4));
        q.complete(t(3));
        assert_eq!(q.dispatched_service(), d(7));
    }

    #[test]
    fn cancel_waiting_decrements_depth() {
        let mut q = FcfsQueue::new(1);
        q.submit(t(0), 1, d(5));
        q.submit(t(0), 2, d(5));
        q.submit(t(0), 3, d(5));
        assert_eq!(q.depth(), 3);
        assert!(q.cancel_waiting(2));
        assert_eq!(q.depth(), 2, "cancelled waiter must leave the gauge");
        assert_eq!(q.queued(), 1);
        // job 2 never reaches a server: job 3 dispatches next.
        assert_eq!(q.complete(t(5)), Some((3, t(10))));
        assert_eq!(q.complete(t(10)), None);
        assert_eq!(q.depth(), 0);
        assert_eq!(q.completed(), 2, "cancelled job never counts as served");
        assert_eq!(q.dispatched_service(), d(10), "cancelled service never dispatched");
    }

    #[test]
    fn cancel_waiting_misses_unknown_and_in_service_jobs() {
        let mut q = FcfsQueue::new(1);
        q.submit(t(0), 1, d(5));
        q.submit(t(0), 2, d(5));
        assert!(!q.cancel_waiting(99), "unknown job");
        assert!(!q.cancel_waiting(1), "in-service jobs are not cancellable here");
        assert_eq!(q.depth(), 2);
        assert!(q.cancel_waiting(2), "waiting job is cancellable");
        assert_eq!(q.depth(), 1);
    }

    #[test]
    fn peak_depth_counts_in_service_and_survives_cancel() {
        let mut q = FcfsQueue::new(2);
        q.submit(t(0), 1, d(5));
        q.submit(t(0), 2, d(5));
        q.submit(t(0), 3, d(5));
        assert_eq!(q.peak_depth(), 3);
        assert_eq!(q.peak_queued(), 1);
        assert!(q.cancel_waiting(3));
        // peak is a high-water mark; live depth reflects the cancel.
        assert_eq!(q.peak_depth(), 3);
        assert_eq!(q.depth(), 2);
    }
}
