//! The discrete-event loop.
//!
//! A simulation is a user-defined *world* (anything implementing [`Model`])
//! plus a time-ordered event heap. The world's [`Model::handle`] method is
//! called for each event in time order and may schedule further events
//! through the [`Ctx`] handle it receives.
//!
//! Two properties matter for a reproduction study:
//!
//! 1. **Determinism** — events at equal timestamps are delivered in the order
//!    they were scheduled (a monotone sequence number breaks ties), so a run
//!    is a pure function of the world's initial state and seed.
//! 2. **Cancellation without tombstone leaks** — models that need to retract
//!    a tentative event (e.g. a fluid-resource completion that became stale
//!    when a new flow arrived) do so by carrying an epoch counter inside the
//!    event payload and ignoring stale epochs on delivery. The kernel itself
//!    never removes events from the heap; this keeps the hot path a plain
//!    binary-heap push/pop.

use crate::profile::{NoopProfiler, Profiler};
use crate::time::{SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A world that can be simulated.
///
/// Implementations own all mutable state of the system under study and
/// dispatch on their own event enum.
pub trait Model {
    /// The event alphabet of this world.
    type Event;

    /// Handle one event at simulated time `now`, scheduling follow-ups on `ctx`.
    fn handle(&mut self, now: SimTime, event: Self::Event, ctx: &mut Ctx<Self::Event>);
}

struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
    /// Idle-advance marker: the event exists only to move the clock through a
    /// quiescent period (health-check ticks, heartbeat timers) and is exempt
    /// from the max-events watchdog budget. Delivery order is unaffected.
    idle: bool,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Scheduling handle passed to [`Model::handle`].
///
/// `Ctx` exposes the current time and lets the model enqueue future events.
/// It is also the only way to stop a run early from inside the model.
pub struct Ctx<E> {
    now: SimTime,
    seq: u64,
    pending: Vec<Scheduled<E>>,
    stop: bool,
}

impl<E> Ctx<E> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// Panics in debug builds if `at` is in the past; the kernel never
    /// rewinds time.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        debug_assert!(at >= self.now, "scheduling into the past: {at} < {}", self.now);
        let seq = self.seq;
        self.seq += 1;
        self.pending.push(Scheduled { at, seq, event, idle: false });
    }

    /// Schedule `event` after a delay of `d`.
    pub fn schedule_in(&mut self, d: SimDuration, event: E) {
        self.schedule_at(self.now + d, event);
    }

    /// Schedule an **idle-advance** event at absolute time `at`.
    ///
    /// Idle events deliver exactly like normal ones but do not count against
    /// the [`Simulation::set_max_events`] budget. Use them for pure timers
    /// that keep the clock moving through quiescent periods — LB health
    /// checks, liveness heartbeats, metric sampling — so a fault-induced
    /// lull cannot trip the runaway-loop watchdog spuriously.
    pub fn schedule_idle_at(&mut self, at: SimTime, event: E) {
        debug_assert!(at >= self.now, "scheduling into the past: {at} < {}", self.now);
        let seq = self.seq;
        self.seq += 1;
        self.pending.push(Scheduled { at, seq, event, idle: true });
    }

    /// Schedule an idle-advance event after a delay of `d` (see
    /// [`schedule_idle_at`](Self::schedule_idle_at)).
    pub fn schedule_idle_in(&mut self, d: SimDuration, event: E) {
        self.schedule_idle_at(self.now + d, event);
    }

    /// Schedule `event` immediately (same timestamp, after currently queued
    /// same-time events).
    pub fn schedule_now(&mut self, event: E) {
        self.schedule_at(self.now, event);
    }

    /// Request that the run loop stop after the current event.
    pub fn stop(&mut self) {
        self.stop = true;
    }
}

/// Hooks into the event loop, called around every delivered event.
///
/// All methods have empty `#[inline]` default bodies, so a generic run loop
/// instantiated with [`NoopObserver`] monomorphizes to exactly the
/// unobserved loop — observation is zero-cost when disabled.
///
/// Observers receive only borrowed event data and engine counters; they must
/// not influence scheduling (the engine stays a pure function of world state
/// and seed whether or not it is observed).
pub trait Observer<E> {
    /// Called after the clock advanced to `now` but before the event is
    /// handed to the world. `heap_depth` is the number of events still
    /// queued (excluding the one being delivered).
    #[inline]
    fn pre_event(&mut self, _now: SimTime, _event: &E, _heap_depth: usize) {}

    /// Called after the world handled the event. `newly_scheduled` is the
    /// number of follow-up events the handler enqueued; `processed` is the
    /// total delivered so far.
    #[inline]
    fn post_event(&mut self, _now: SimTime, _newly_scheduled: usize, _processed: u64) {}

    /// Called once if the max-events watchdog halts the run (see
    /// [`Simulation::set_max_events`]).
    #[inline]
    fn on_watchdog(&mut self, _now: SimTime, _processed: u64) {}
}

/// The do-nothing observer; running with it is identical to running
/// unobserved.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl<E> Observer<E> for NoopObserver {}

/// A running simulation: world + event heap + clock.
pub struct Simulation<M: Model> {
    world: M,
    heap: BinaryHeap<Reverse<Scheduled<M::Event>>>,
    now: SimTime,
    seq: u64,
    processed: u64,
    budgeted: u64,
    stopped: bool,
    max_events: Option<u64>,
    watchdog_tripped: bool,
}

impl<M: Model> Simulation<M> {
    /// Create a simulation over `world` starting at t = 0 with an empty heap.
    pub fn new(world: M) -> Self {
        Simulation {
            world,
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
            processed: 0,
            budgeted: 0,
            stopped: false,
            max_events: None,
            watchdog_tripped: false,
        }
    }

    /// Arm (or with `None`, disarm) the runaway-run watchdog: once the number
    /// of **budgeted** (non-idle) events delivered reaches `limit` the loop
    /// refuses to deliver further events, marks the run stopped, and reports
    /// through [`Observer::on_watchdog`].
    ///
    /// A tripped watchdog means the world is live-locked (e.g. an event that
    /// reschedules itself forever without advancing the experiment) — the
    /// budget exists so such bugs surface as a diagnostic instead of a hang.
    /// Idle-advance events ([`Ctx::schedule_idle_at`]) are exempt: a
    /// crash-induced quiescent period that is bridged only by periodic timer
    /// ticks does not consume budget, so `watchdog_tripped` fires only on
    /// genuine runaway loops.
    pub fn set_max_events(&mut self, limit: Option<u64>) {
        self.max_events = limit;
    }

    /// True if a run was halted by the max-events watchdog.
    pub fn watchdog_tripped(&self) -> bool {
        self.watchdog_tripped
    }

    /// Current simulated time (the timestamp of the last delivered event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events delivered so far (idle-advance events included).
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of budgeted (non-idle) events delivered so far — the counter
    /// the max-events watchdog compares against its limit.
    pub fn budgeted_processed(&self) -> u64 {
        self.budgeted
    }

    /// Total events ever scheduled (heap pushes), external and follow-up
    /// alike. Every schedule consumes one sequence number, so this is the
    /// push half of the heap push/pop balance a profiler reports;
    /// [`processed`](Self::processed) is the pop half.
    pub fn scheduled_total(&self) -> u64 {
        self.seq
    }

    /// Shared access to the world.
    pub fn world(&self) -> &M {
        &self.world
    }

    /// Exclusive access to the world (for post-run metric extraction or
    /// pre-run configuration).
    pub fn world_mut(&mut self) -> &mut M {
        &mut self.world
    }

    /// Consume the simulation and return the world.
    pub fn into_world(self) -> M {
        self.world
    }

    /// True once [`Ctx::stop`] has been honoured or the heap has drained.
    pub fn is_stopped(&self) -> bool {
        self.stopped
    }

    /// Schedule an initial event from outside the world.
    pub fn schedule_at(&mut self, at: SimTime, event: M::Event) {
        assert!(at >= self.now, "scheduling into the past");
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Scheduled { at, seq, event, idle: false }));
    }

    /// Schedule an initial idle-advance event from outside the world (see
    /// [`Ctx::schedule_idle_at`]): exempt from the max-events budget.
    pub fn schedule_idle_at(&mut self, at: SimTime, event: M::Event) {
        assert!(at >= self.now, "scheduling into the past");
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Scheduled { at, seq, event, idle: true }));
    }

    /// Deliver the next event, if any. Returns `false` when the heap is empty
    /// or a stop was requested.
    pub fn step(&mut self) -> bool {
        self.step_observed(&mut NoopObserver)
    }

    /// [`step`](Self::step), reporting to `obs`. With [`NoopObserver`] this
    /// compiles to the same code as the unobserved step.
    pub fn step_observed<O: Observer<M::Event>>(&mut self, obs: &mut O) -> bool {
        self.step_inner(obs, &mut NoopProfiler)
    }

    /// [`step`](Self::step), reporting to both `obs` (world-level metrics)
    /// and `prof` (engine self-measurement). With [`NoopProfiler`] this
    /// compiles to the same code as [`step_observed`](Self::step_observed).
    pub fn step_profiled<O: Observer<M::Event>, P: Profiler<M::Event>>(
        &mut self,
        obs: &mut O,
        prof: &mut P,
    ) -> bool {
        self.step_inner(obs, prof)
    }

    fn step_inner<O: Observer<M::Event>, P: Profiler<M::Event>>(
        &mut self,
        obs: &mut O,
        prof: &mut P,
    ) -> bool {
        if self.stopped {
            return false;
        }
        if let Some(limit) = self.max_events {
            if self.budgeted >= limit {
                self.stopped = true;
                self.watchdog_tripped = true;
                obs.on_watchdog(self.now, self.processed);
                prof.on_watchdog(self.now);
                return false;
            }
        }
        let Some(Reverse(next)) = self.heap.pop() else {
            self.stopped = true;
            return false;
        };
        debug_assert!(next.at >= self.now, "heap produced an out-of-order event");
        let advanced = next.at - self.now;
        self.now = next.at;
        self.processed += 1;
        if !next.idle {
            self.budgeted += 1;
        }
        obs.pre_event(self.now, &next.event, self.heap.len());
        prof.on_dispatch(self.now, &next.event, advanced);
        let mut ctx = Ctx {
            now: self.now,
            seq: self.seq,
            pending: Vec::new(),
            stop: false,
        };
        self.world.handle(self.now, next.event, &mut ctx);
        self.seq = ctx.seq;
        let newly_scheduled = ctx.pending.len();
        for s in ctx.pending {
            self.heap.push(Reverse(s));
        }
        if ctx.stop {
            self.stopped = true;
        }
        obs.post_event(self.now, newly_scheduled, self.processed);
        prof.on_handled(self.now, newly_scheduled, self.heap.len());
        true
    }

    /// Run until the heap drains or a stop is requested. Returns the number
    /// of events delivered by this call.
    pub fn run(&mut self) -> u64 {
        self.run_observed(&mut NoopObserver)
    }

    /// [`run`](Self::run), reporting every event to `obs`.
    pub fn run_observed<O: Observer<M::Event>>(&mut self, obs: &mut O) -> u64 {
        let before = self.processed;
        while self.step_observed(obs) {}
        self.processed - before
    }

    /// [`run`](Self::run), reporting every event to `obs` and `prof`.
    ///
    /// The profiler sees the same stream the observer does; with
    /// [`NoopProfiler`] this monomorphizes to
    /// [`run_observed`](Self::run_observed) exactly, so profiling is
    /// zero-cost when disabled.
    pub fn run_profiled<O: Observer<M::Event>, P: Profiler<M::Event>>(
        &mut self,
        obs: &mut O,
        prof: &mut P,
    ) -> u64 {
        let before = self.processed;
        while self.step_inner(obs, prof) {}
        self.processed - before
    }

    /// Run until simulated time reaches `deadline` (events strictly after the
    /// deadline remain queued), the heap drains, or a stop is requested.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        self.run_until_observed(deadline, &mut NoopObserver)
    }

    /// [`run_until`](Self::run_until), reporting every event to `obs`.
    pub fn run_until_observed<O: Observer<M::Event>>(
        &mut self,
        deadline: SimTime,
        obs: &mut O,
    ) -> u64 {
        let before = self.processed;
        loop {
            match self.heap.peek() {
                Some(Reverse(s)) if s.at <= deadline => {
                    if !self.step_observed(obs) {
                        break;
                    }
                }
                _ => break,
            }
        }
        // Advance the clock to the deadline even if no event landed on it,
        // so metric extraction sees a consistent "end of window" time.
        if self.now < deadline && !self.stopped {
            self.now = deadline;
        }
        self.processed - before
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy world that records the order events arrive in.
    struct Recorder {
        log: Vec<(u64, u32)>,
    }

    enum Ev {
        Mark(u32),
        Chain { left: u32, gap: SimDuration },
        IdleTick { left: u32, gap: SimDuration },
        StopNow,
    }

    impl Model for Recorder {
        type Event = Ev;
        fn handle(&mut self, now: SimTime, event: Ev, ctx: &mut Ctx<Ev>) {
            match event {
                Ev::Mark(id) => self.log.push((now.0, id)),
                Ev::Chain { left, gap } => {
                    self.log.push((now.0, 1000 + left));
                    if left > 0 {
                        ctx.schedule_in(gap, Ev::Chain { left: left - 1, gap });
                    }
                }
                Ev::IdleTick { left, gap } => {
                    self.log.push((now.0, 2000 + left));
                    if left > 0 {
                        ctx.schedule_idle_in(gap, Ev::IdleTick { left: left - 1, gap });
                    }
                }
                Ev::StopNow => ctx.stop(),
            }
        }
    }

    #[test]
    fn events_deliver_in_time_order() {
        let mut sim = Simulation::new(Recorder { log: vec![] });
        sim.schedule_at(SimTime::from_secs(3), Ev::Mark(3));
        sim.schedule_at(SimTime::from_secs(1), Ev::Mark(1));
        sim.schedule_at(SimTime::from_secs(2), Ev::Mark(2));
        sim.run();
        let ids: Vec<u32> = sim.world().log.iter().map(|&(_, i)| i).collect();
        assert_eq!(ids, vec![1, 2, 3]);
        assert_eq!(sim.now(), SimTime::from_secs(3));
    }

    #[test]
    fn equal_times_fifo() {
        let mut sim = Simulation::new(Recorder { log: vec![] });
        for id in 0..100 {
            sim.schedule_at(SimTime::from_secs(1), Ev::Mark(id));
        }
        sim.run();
        let ids: Vec<u32> = sim.world().log.iter().map(|&(_, i)| i).collect();
        assert_eq!(ids, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn chained_scheduling_advances_clock() {
        let mut sim = Simulation::new(Recorder { log: vec![] });
        sim.schedule_at(
            SimTime::ZERO,
            Ev::Chain { left: 4, gap: SimDuration::from_millis(10) },
        );
        let n = sim.run();
        assert_eq!(n, 5);
        assert_eq!(sim.now(), SimTime(40 * 1_000_000));
    }

    #[test]
    fn run_until_leaves_future_events() {
        let mut sim = Simulation::new(Recorder { log: vec![] });
        sim.schedule_at(SimTime::from_secs(1), Ev::Mark(1));
        sim.schedule_at(SimTime::from_secs(5), Ev::Mark(5));
        sim.run_until(SimTime::from_secs(2));
        assert_eq!(sim.world().log.len(), 1);
        assert_eq!(sim.now(), SimTime::from_secs(2));
        sim.run();
        assert_eq!(sim.world().log.len(), 2);
    }

    #[test]
    fn stop_halts_the_loop() {
        let mut sim = Simulation::new(Recorder { log: vec![] });
        sim.schedule_at(SimTime::from_secs(1), Ev::StopNow);
        sim.schedule_at(SimTime::from_secs(2), Ev::Mark(2));
        sim.run();
        assert!(sim.is_stopped());
        assert!(sim.world().log.is_empty());
    }

    /// Counting observer used by the hook tests below.
    #[derive(Default)]
    struct Counting {
        pre: u64,
        post: u64,
        scheduled: u64,
        max_heap_depth: usize,
        watchdog: Option<(SimTime, u64)>,
    }

    impl Observer<Ev> for Counting {
        fn pre_event(&mut self, _now: SimTime, _event: &Ev, heap_depth: usize) {
            self.pre += 1;
            self.max_heap_depth = self.max_heap_depth.max(heap_depth);
        }
        fn post_event(&mut self, _now: SimTime, newly_scheduled: usize, _processed: u64) {
            self.post += 1;
            self.scheduled += newly_scheduled as u64;
        }
        fn on_watchdog(&mut self, now: SimTime, processed: u64) {
            self.watchdog = Some((now, processed));
        }
    }

    #[test]
    fn observer_sees_every_event() {
        let mut sim = Simulation::new(Recorder { log: vec![] });
        sim.schedule_at(
            SimTime::ZERO,
            Ev::Chain { left: 9, gap: SimDuration::from_millis(1) },
        );
        sim.schedule_at(SimTime::from_secs(1), Ev::Mark(1));
        let mut obs = Counting::default();
        let n = sim.run_observed(&mut obs);
        assert_eq!(n, 11);
        assert_eq!(obs.pre, 11);
        assert_eq!(obs.post, 11);
        assert_eq!(obs.scheduled, 9); // each chain link but the last reschedules once
        assert!(obs.max_heap_depth >= 1);
        assert!(obs.watchdog.is_none());
    }

    #[test]
    fn observed_run_matches_unobserved() {
        let build = || {
            let mut sim = Simulation::new(Recorder { log: vec![] });
            sim.schedule_at(
                SimTime::ZERO,
                Ev::Chain { left: 20, gap: SimDuration::from_micros(500) },
            );
            sim.schedule_at(SimTime::from_millis(3), Ev::Mark(7));
            sim
        };
        let mut plain = build();
        plain.run();
        let mut observed = build();
        observed.run_observed(&mut Counting::default());
        assert_eq!(plain.world().log, observed.world().log);
        assert_eq!(plain.now(), observed.now());
        assert_eq!(plain.processed(), observed.processed());
    }

    /// A world that reschedules itself forever — the bug class the
    /// watchdog exists to catch.
    struct Runaway;
    impl Model for Runaway {
        type Event = ();
        fn handle(&mut self, _now: SimTime, _ev: (), ctx: &mut Ctx<()>) {
            ctx.schedule_in(SimDuration::from_micros(1), ());
        }
    }

    #[test]
    fn watchdog_trips_on_self_rescheduling_world() {
        let mut sim = Simulation::new(Runaway);
        sim.set_max_events(Some(1_000));
        sim.schedule_at(SimTime::ZERO, ());
        let n = sim.run();
        assert_eq!(n, 1_000);
        assert!(sim.watchdog_tripped());
        assert!(sim.is_stopped());
    }

    #[test]
    fn watchdog_reports_through_observer() {
        let mut sim = Simulation::new(Recorder { log: vec![] });
        sim.set_max_events(Some(3));
        sim.schedule_at(
            SimTime::ZERO,
            Ev::Chain { left: 100, gap: SimDuration::from_millis(1) },
        );
        let mut obs = Counting::default();
        sim.run_observed(&mut obs);
        assert_eq!(obs.pre, 3);
        let (at, processed) = obs.watchdog.expect("watchdog should have fired");
        assert_eq!(processed, 3);
        assert_eq!(at, SimTime::from_millis(2));
        assert!(sim.watchdog_tripped());
    }

    #[test]
    fn watchdog_disarmed_runs_to_completion() {
        let mut sim = Simulation::new(Recorder { log: vec![] });
        sim.set_max_events(Some(2));
        sim.set_max_events(None);
        sim.schedule_at(
            SimTime::ZERO,
            Ev::Chain { left: 5, gap: SimDuration::from_millis(1) },
        );
        assert_eq!(sim.run(), 6);
        assert!(!sim.watchdog_tripped());
    }

    /// The unobserved loop must not regress from carrying observer hooks:
    /// a NoopObserver run must cost the same as `run()` to within noise.
    /// Min-of-N with a generous factor keeps this robust on loaded CI.
    #[test]
    fn noop_observer_adds_no_measurable_overhead() {
        // simlint: allow(R1) host-side timing of the engine itself; result
        // never feeds simulation state.
        fn min_time<F: FnMut() -> u64>(mut f: F) -> std::time::Duration {
            (0..5)
                .map(|_| {
                    let t0 = std::time::Instant::now();
                    std::hint::black_box(f());
                    t0.elapsed()
                })
                .min()
                .unwrap_or_default()
        }
        let chain = || {
            let mut sim = Simulation::new(Recorder { log: Vec::with_capacity(200_001) });
            sim.schedule_at(
                SimTime::ZERO,
                Ev::Chain { left: 200_000, gap: SimDuration::from_micros(1) },
            );
            sim
        };
        let plain = min_time(|| chain().run());
        let observed = min_time(|| chain().run_observed(&mut NoopObserver));
        let profiled =
            min_time(|| chain().run_profiled(&mut NoopObserver, &mut NoopProfiler));
        // Identical monomorphized code; 4x headroom absorbs scheduler noise.
        assert!(
            observed <= plain * 4 + std::time::Duration::from_millis(5),
            "NoopObserver run regressed: {observed:?} vs {plain:?}"
        );
        assert!(
            profiled <= plain * 4 + std::time::Duration::from_millis(5),
            "NoopProfiler run regressed: {profiled:?} vs {plain:?}"
        );
    }

    /// A fault-quiesced world: nothing happens for a long stretch except a
    /// periodic idle tick bridging the gap. A budget far smaller than the
    /// tick count must not trip — idle advance is exempt.
    #[test]
    fn idle_ticks_do_not_trip_watchdog() {
        let mut sim = Simulation::new(Recorder { log: vec![] });
        sim.set_max_events(Some(5));
        sim.schedule_at(SimTime::ZERO, Ev::Mark(0));
        sim.schedule_idle_at(
            SimTime::ZERO,
            Ev::IdleTick { left: 200, gap: SimDuration::from_secs(1) },
        );
        sim.schedule_at(SimTime::from_secs(150), Ev::Mark(1));
        let n = sim.run();
        assert_eq!(n, 203, "all events deliver");
        assert!(!sim.watchdog_tripped(), "idle ticks must not consume budget");
        assert_eq!(sim.budgeted_processed(), 2);
        assert_eq!(sim.processed(), 203);
        assert_eq!(sim.now(), SimTime::from_secs(200));
    }

    /// A genuine runaway loop still trips even when idle ticks are
    /// interleaved: only the non-idle events consume budget.
    #[test]
    fn runaway_trips_despite_interleaved_idle_ticks() {
        let mut sim = Simulation::new(Recorder { log: vec![] });
        sim.set_max_events(Some(50));
        sim.schedule_idle_at(
            SimTime::ZERO,
            Ev::IdleTick { left: 1_000, gap: SimDuration::from_millis(1) },
        );
        sim.schedule_at(
            SimTime::ZERO,
            Ev::Chain { left: 1_000, gap: SimDuration::from_millis(1) },
        );
        sim.run();
        assert!(sim.watchdog_tripped());
        assert_eq!(sim.budgeted_processed(), 50);
    }

    /// Idle scheduling must not perturb delivery order relative to normal
    /// events at the same timestamps (only the budget differs).
    #[test]
    fn idle_events_keep_fifo_order() {
        let mut sim = Simulation::new(Recorder { log: vec![] });
        sim.schedule_at(SimTime::from_secs(1), Ev::Mark(10));
        sim.schedule_idle_at(SimTime::from_secs(1), Ev::IdleTick { left: 0, gap: SimDuration::ZERO });
        sim.schedule_at(SimTime::from_secs(1), Ev::Mark(11));
        sim.run();
        let ids: Vec<u32> = sim.world().log.iter().map(|&(_, i)| i).collect();
        assert_eq!(ids, vec![10, 2000, 11]);
    }

    #[test]
    fn processed_counts_events() {
        let mut sim = Simulation::new(Recorder { log: vec![] });
        for i in 0..7 {
            sim.schedule_at(SimTime::from_secs(i), Ev::Mark(i as u32));
        }
        sim.run();
        assert_eq!(sim.processed(), 7);
    }
}
