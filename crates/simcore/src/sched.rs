//! A context-free scheduling buffer.
//!
//! [`Ctx`] is only reachable inside [`crate::Model::handle`], which makes it
//! awkward for code that runs *logically* inside a handle but does not hold
//! the `&mut Ctx` borrow — shared helpers called from both an event-handler
//! arm and an async task body, or futures polled by an executor while the
//! world is dispatching an event. [`SchedBuf`] is the bridge: it records
//! schedule requests in call order and [`SchedBuf::flush`]es them into the
//! real context before the handle returns.
//!
//! Determinism note: the engine assigns sequence numbers per `schedule_*`
//! call, in call order, and defers heap pushes until the handle returns. A
//! buffered schedule flushed at end-of-handle therefore receives *exactly*
//! the sequence number a direct `Ctx` call at the same position would have —
//! routing a code path through `SchedBuf` is byte-invisible to the event
//! heap, the profiler and every downstream export.

use crate::engine::Ctx;
use crate::time::{SimDuration, SimTime};

/// One buffered scheduling request.
#[derive(Debug)]
enum Op<E> {
    At(SimTime, E),
    IdleAt(SimTime, E),
}

/// An ordered buffer of schedule requests, flushed into a [`Ctx`] at the
/// end of the current event handle. See the module docs for why this is
/// equivalent to scheduling directly.
#[derive(Debug)]
pub struct SchedBuf<E> {
    now: SimTime,
    ops: Vec<Op<E>>,
    stop: bool,
}

impl<E> SchedBuf<E> {
    /// An empty buffer anchored at the current event's dispatch time.
    pub fn new(now: SimTime) -> Self {
        SchedBuf { now, ops: Vec::new(), stop: false }
    }

    /// The dispatch time of the event being handled.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Buffer an event at absolute time `at` (≥ now, checked at flush).
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        self.ops.push(Op::At(at, event));
    }

    /// Buffer an event `d` after now.
    pub fn schedule_in(&mut self, d: SimDuration, event: E) {
        let at = self.now + d;
        self.ops.push(Op::At(at, event));
    }

    /// Buffer a watchdog-exempt event at absolute time `at` (measurement
    /// ticks and other non-model work; see [`Ctx::schedule_idle_at`]).
    pub fn schedule_idle_at(&mut self, at: SimTime, event: E) {
        self.ops.push(Op::IdleAt(at, event));
    }

    /// Buffer a watchdog-exempt event `d` after now.
    pub fn schedule_idle_in(&mut self, d: SimDuration, event: E) {
        let at = self.now + d;
        self.ops.push(Op::IdleAt(at, event));
    }

    /// Request that the simulation stop once this handle returns.
    pub fn stop(&mut self) {
        self.stop = true;
    }

    /// True when nothing has been buffered (no ops, no stop request).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty() && !self.stop
    }

    /// Replay every buffered request into `ctx`, in call order, then clear
    /// the buffer. Must be called before the enclosing handle returns.
    pub fn flush(&mut self, ctx: &mut Ctx<E>) {
        for op in self.ops.drain(..) {
            match op {
                Op::At(at, e) => ctx.schedule_at(at, e),
                Op::IdleAt(at, e) => ctx.schedule_idle_at(at, e),
            }
        }
        if self.stop {
            self.stop = false;
            ctx.stop();
        }
    }

    /// Re-anchor the buffer at a new dispatch time (reusing the allocation
    /// across handles). The buffer must be empty — flushing is the caller's
    /// responsibility, never this method's.
    pub fn reset(&mut self, now: SimTime) {
        debug_assert!(self.is_empty(), "resetting a SchedBuf with unflushed ops");
        self.now = now;
        self.ops.clear();
        self.stop = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Model, Simulation};

    /// A world that schedules via SchedBuf in one arm and directly in the
    /// other; the test pins that both produce the same trajectory.
    struct Chain {
        buffered: bool,
        seen: Vec<(SimTime, u32)>,
    }

    impl Model for Chain {
        type Event = u32;
        fn handle(&mut self, now: SimTime, event: u32, ctx: &mut Ctx<u32>) {
            self.seen.push((now, event));
            if event >= 6 {
                ctx.stop();
                return;
            }
            if self.buffered {
                let mut sb = SchedBuf::new(now);
                // two same-time events: sequence order must match the
                // direct path's call order exactly
                sb.schedule_in(SimDuration::from_millis(10), event + 1);
                sb.schedule_in(SimDuration::from_millis(10), event + 2);
                sb.flush(ctx);
            } else {
                ctx.schedule_in(SimDuration::from_millis(10), event + 1);
                ctx.schedule_in(SimDuration::from_millis(10), event + 2);
            }
        }
    }

    fn run(buffered: bool) -> Vec<(SimTime, u32)> {
        let mut sim = Simulation::new(Chain { buffered, seen: Vec::new() });
        sim.schedule_at(SimTime::ZERO, 0u32);
        sim.run();
        sim.into_world().seen
    }

    #[test]
    fn buffered_matches_direct_scheduling() {
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn stop_is_applied_at_flush() {
        struct Stopper;
        impl Model for Stopper {
            type Event = ();
            fn handle(&mut self, now: SimTime, _e: (), ctx: &mut Ctx<()>) {
                let mut sb = SchedBuf::new(now);
                sb.schedule_in(SimDuration::from_secs(1), ());
                sb.stop();
                assert!(!sb.is_empty());
                sb.flush(ctx);
                assert!(sb.is_empty());
            }
        }
        let mut sim = Simulation::new(Stopper);
        sim.schedule_at(SimTime::ZERO, ());
        sim.run();
        // the stop wins over the buffered follow-up event
        assert_eq!(sim.processed(), 1);
        assert!(sim.is_stopped());
    }

    #[test]
    fn reset_reanchors_now() {
        let mut sb: SchedBuf<u32> = SchedBuf::new(SimTime::ZERO);
        assert_eq!(sb.now(), SimTime::ZERO);
        sb.reset(SimTime::from_secs(3));
        assert_eq!(sb.now(), SimTime::from_secs(3));
    }
}
