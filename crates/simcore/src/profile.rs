//! simprof: deterministic self-profiling of the event loop.
//!
//! The paper's headline claims (req/J, time-to-completion) are only as
//! trustworthy as the simulator's own performance envelope, so the engine
//! can profile *itself*: where simulated time goes, which event kinds
//! dominate dispatch, how deep the heap runs. Everything recorded here is
//! a pure function of the world and seed — **no wall-clock values** —
//! so profiles are byte-comparable across machines and `--jobs` widths.
//!
//! Three pieces:
//!
//! * [`Profiler`] — the hook trait the run loop reports through. All
//!   methods have empty `#[inline]` default bodies, so a loop
//!   instantiated with [`NoopProfiler`] monomorphizes to exactly the
//!   unprofiled loop (the same zero-cost construction as
//!   [`Observer`](crate::Observer)).
//! * [`KindProfiler`] — the production impl: classifies events through a
//!   caller-supplied `fn(&E) -> &'static str` (the same `Ev::kind`
//!   classifiers the telemetry layer uses) and accumulates an
//!   [`EngineProfile`].
//! * [`EngineProfile`] — the result: per-kind dispatch/schedule counts
//!   and sim-time attribution, heap push/pop totals, and the heap-depth
//!   high-water mark with its step track (exportable as a Perfetto
//!   counter track). Profiles [`merge`](EngineProfile::merge) so a sweep
//!   can fold per-point profiles in input order into one per-experiment
//!   breakdown.
//!
//! Profilers receive only borrowed event data; they must not influence
//! scheduling. The engine stays a pure function of world state and seed
//! whether or not it is profiled — enforced by observer-equivalence
//! tests in the stacks (profiled and unprofiled runs produce identical
//! metrics).

use crate::engine::{Model, Simulation};
use crate::time::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// Hooks into the run loop, called around every delivered event.
///
/// Mirrors [`Observer`](crate::Observer) but is aimed at *engine*
/// self-measurement rather than world-level metrics; the two compose
/// (see [`Simulation::run_profiled`](crate::Simulation::run_profiled)).
pub trait Profiler<E> {
    /// Called after the clock advanced to `now` but before the event is
    /// handed to the world. `advanced` is the sim time the clock moved to
    /// reach this event (zero for same-timestamp deliveries).
    #[inline]
    fn on_dispatch(&mut self, _now: SimTime, _event: &E, _advanced: SimDuration) {}

    /// Called after the world handled the event and its follow-ups were
    /// pushed. `newly_scheduled` is the number of follow-up events the
    /// handler enqueued; `heap_depth` is the number of events queued
    /// after those pushes.
    #[inline]
    fn on_handled(&mut self, _now: SimTime, _newly_scheduled: usize, _heap_depth: usize) {}

    /// Called once if the max-events watchdog halts the run.
    #[inline]
    fn on_watchdog(&mut self, _now: SimTime) {}
}

/// The do-nothing profiler; running with it is identical to running
/// unprofiled.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopProfiler;

impl<E> Profiler<E> for NoopProfiler {}

/// Per-event-kind accumulators inside an [`EngineProfile`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KindStats {
    /// Events of this kind delivered.
    pub dispatched: u64,
    /// Follow-up events scheduled by handlers of this kind.
    pub scheduled: u64,
    /// Sim time the clock advanced to deliver events of this kind — the
    /// share of the simulated timeline this kind consumed.
    pub advance: SimDuration,
}

/// A deterministic profile of one (or several merged) engine runs.
///
/// Every field is a pure function of world + seed: counts and sim-time
/// durations only, never wall-clock. Wall-clock rates (events/sec) are
/// computed *outside* the profile by the bench harness, which divides
/// these deterministic totals by its own timing.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EngineProfile {
    /// Per-kind breakdowns, keyed by the classifier's static kind name.
    pub kinds: BTreeMap<&'static str, KindStats>,
    /// Total events ever pushed onto the heap (initial + follow-ups).
    pub heap_pushes: u64,
    /// Total events popped (== delivered).
    pub heap_pops: u64,
    /// Heap-depth high-water mark (events queued after a handler ran).
    pub heap_depth_hwm: u64,
    /// Each `(time, depth)` step where the high-water mark rose — a
    /// monotone, bounded series exportable as a Perfetto counter track.
    pub hwm_track: Vec<(SimTime, u64)>,
    /// Sim time of the last delivered event.
    pub end: SimTime,
}

impl EngineProfile {
    /// Total events delivered across all kinds.
    pub fn events(&self) -> u64 {
        self.kinds.values().map(|k| k.dispatched).sum()
    }

    /// Simulated seconds covered by the profile.
    pub fn sim_seconds(&self) -> f64 {
        self.end.as_secs_f64()
    }

    /// Fold `other` into `self`: counts add, high-water marks take the
    /// max, step tracks concatenate in time order (stable, so same-time
    /// steps keep fold order), `end` takes the max.
    ///
    /// Folding a sweep's per-point profiles **in input order** makes the
    /// merged profile independent of worker count — the property the
    /// jobs=1-vs-8 bit-identity test pins.
    pub fn merge(&mut self, other: &EngineProfile) {
        for (kind, stats) in &other.kinds {
            let mine = self.kinds.entry(kind).or_default();
            mine.dispatched += stats.dispatched;
            mine.scheduled += stats.scheduled;
            mine.advance = mine.advance + stats.advance;
        }
        self.heap_pushes += other.heap_pushes;
        self.heap_pops += other.heap_pops;
        self.heap_depth_hwm = self.heap_depth_hwm.max(other.heap_depth_hwm);
        self.hwm_track.extend(other.hwm_track.iter().copied());
        self.hwm_track.sort_by_key(|&(t, _)| t); // stable: fold order kept on ties
        self.end = self.end.max(other.end);
    }
}

/// A [`Profiler`] that accumulates an [`EngineProfile`], classifying
/// events through `F` (typically the world's `Ev::kind`).
#[derive(Debug, Clone)]
pub struct KindProfiler<F> {
    classify: F,
    profile: EngineProfile,
    /// Kind of the event currently being handled (set by `on_dispatch`,
    /// consumed by `on_handled`).
    current: &'static str,
}

impl<F> KindProfiler<F> {
    /// New profiler using `classify` to name event kinds.
    pub fn new(classify: F) -> Self {
        KindProfiler { classify, profile: EngineProfile::default(), current: "" }
    }

    /// The profile accumulated so far.
    pub fn profile(&self) -> &EngineProfile {
        &self.profile
    }

    /// Finish profiling `sim`'s run: fills in the engine-level heap
    /// totals (pushes = every event ever scheduled, pops = every event
    /// delivered) and returns the completed profile.
    pub fn finish<M: Model>(mut self, sim: &Simulation<M>) -> EngineProfile {
        self.profile.heap_pushes = sim.scheduled_total();
        self.profile.heap_pops = sim.processed();
        self.profile
    }
}

impl<E, F: FnMut(&E) -> &'static str> Profiler<E> for KindProfiler<F> {
    fn on_dispatch(&mut self, now: SimTime, event: &E, advanced: SimDuration) {
        self.current = (self.classify)(event);
        let k = self.profile.kinds.entry(self.current).or_default();
        k.dispatched += 1;
        k.advance = k.advance + advanced;
        self.profile.end = now;
    }

    fn on_handled(&mut self, now: SimTime, newly_scheduled: usize, heap_depth: usize) {
        let k = self.profile.kinds.entry(self.current).or_default();
        k.scheduled += u64::try_from(newly_scheduled).unwrap_or(u64::MAX);
        let depth = u64::try_from(heap_depth).unwrap_or(u64::MAX);
        if depth > self.profile.heap_depth_hwm {
            self.profile.heap_depth_hwm = depth;
            self.profile.hwm_track.push((now, depth));
        }
    }

    fn on_watchdog(&mut self, now: SimTime) {
        self.profile.end = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Ctx, NoopObserver};

    struct Chain {
        left: u32,
    }
    #[derive(Clone, Copy)]
    enum Ev {
        Tick,
        Tock,
    }
    impl Ev {
        fn kind(&self) -> &'static str {
            match self {
                Ev::Tick => "tick",
                Ev::Tock => "tock",
            }
        }
    }
    impl Model for Chain {
        type Event = Ev;
        fn handle(&mut self, _now: SimTime, ev: Ev, ctx: &mut Ctx<Ev>) {
            if self.left == 0 {
                return;
            }
            self.left -= 1;
            let next = match ev {
                Ev::Tick => Ev::Tock,
                Ev::Tock => Ev::Tick,
            };
            ctx.schedule_in(SimDuration::from_millis(2), next);
        }
    }

    fn profiled_run(left: u32) -> EngineProfile {
        let mut sim = Simulation::new(Chain { left });
        sim.schedule_at(SimTime::ZERO, Ev::Tick);
        let mut prof = KindProfiler::new(Ev::kind);
        sim.run_profiled(&mut NoopObserver, &mut prof);
        prof.finish(&sim)
    }

    #[test]
    fn per_kind_counts_and_advance_attribution() {
        let p = profiled_run(4);
        assert_eq!(p.kinds["tick"].dispatched, 3);
        assert_eq!(p.kinds["tock"].dispatched, 2);
        assert_eq!(p.events(), 5);
        // every handler but the last reschedules once
        let scheduled: u64 = p.kinds.values().map(|k| k.scheduled).sum();
        assert_eq!(scheduled, 4);
        // 4 × 2 ms of clock advance attributed across kinds
        let adv: SimDuration = p
            .kinds
            .values()
            .fold(SimDuration::ZERO, |a, k| a + k.advance);
        assert_eq!(adv, SimDuration::from_millis(8));
        assert_eq!(p.end, SimTime::from_millis(8));
        assert!((p.sim_seconds() - 0.008).abs() < 1e-12);
    }

    #[test]
    fn heap_totals_balance() {
        let p = profiled_run(9);
        assert_eq!(p.heap_pushes, 10, "1 external + 9 follow-ups");
        assert_eq!(p.heap_pops, 10, "heap fully drained");
    }

    #[test]
    fn hwm_track_is_monotone_and_bounded() {
        let mut sim = Simulation::new(Chain { left: 0 });
        for i in 0..50u64 {
            sim.schedule_at(SimTime::from_secs(i), Ev::Tick);
        }
        let mut prof = KindProfiler::new(Ev::kind);
        sim.run_profiled(&mut NoopObserver, &mut prof);
        let p = prof.finish(&sim);
        assert_eq!(p.heap_depth_hwm, 49, "depth after first delivery");
        // the track only records *rises*, so it is strictly increasing in
        // depth and never longer than the high-water mark itself
        assert!(p.hwm_track.windows(2).all(|w| w[0].1 < w[1].1));
        assert_eq!(p.hwm_track.len(), 1, "depth only falls after the first pop");
    }

    #[test]
    fn merge_adds_counts_and_maxes_hwm() {
        let mut a = profiled_run(4);
        let b = profiled_run(9);
        let a_events = a.events();
        let b_events = b.events();
        a.merge(&b);
        assert_eq!(a.events(), a_events + b_events);
        assert_eq!(a.heap_pushes, 5 + 10);
        assert_eq!(a.end, SimTime::from_millis(18));
        // merge order is deterministic: same fold → same profile
        let mut c = profiled_run(4);
        c.merge(&profiled_run(9));
        assert_eq!(a, c);
    }

    #[test]
    fn profiled_run_matches_unprofiled() {
        let build = || {
            let mut sim = Simulation::new(Chain { left: 100 });
            sim.schedule_at(SimTime::ZERO, Ev::Tick);
            sim
        };
        let mut plain = build();
        plain.run();
        let mut profiled = build();
        let mut prof = KindProfiler::new(Ev::kind);
        profiled.run_profiled(&mut NoopObserver, &mut prof);
        assert_eq!(plain.now(), profiled.now());
        assert_eq!(plain.processed(), profiled.processed());
        assert_eq!(plain.world().left, profiled.world().left);
    }
}
