//! Deterministic random number helpers.
//!
//! Every experiment takes a single `u64` seed; all stochastic choices
//! (request inter-arrival jitter, table selection, cache-key draws, word
//! distributions) derive from it, so a run is exactly reproducible. Streams
//! for independent subsystems are split with [`SimRng::split`] to avoid
//! cross-coupling when one subsystem changes its draw count.

use rand::distributions::{Distribution, WeightedIndex};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A seeded RNG with the handful of distributions the workloads need.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
}

impl SimRng {
    /// Create from a seed.
    pub fn new(seed: u64) -> Self {
        SimRng { inner: SmallRng::seed_from_u64(seed) }
    }

    /// Derive an independent sub-stream (consumes one draw).
    pub fn split(&mut self) -> SimRng {
        SimRng::new(self.inner.gen())
    }

    /// Uniform in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo < hi);
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.inner.gen_range(0..n)
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi);
        self.inner.gen_range(lo..hi)
    }

    /// Exponential with the given mean (inter-arrival times).
    pub fn exp(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        // Inverse-CDF; 1-u avoids ln(0).
        -mean * (1.0 - self.uniform()).ln()
    }

    /// Bernoulli with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        self.uniform() < p
    }

    /// Index drawn with the given (unnormalised, non-negative) weights.
    ///
    /// Panics if all weights are zero or any is negative.
    pub fn weighted(&mut self, weights: &[f64]) -> usize {
        // simlint: allow(R6) documented panic contract; every caller passes literal weights
        let dist = WeightedIndex::new(weights).expect("invalid weights");
        dist.sample(&mut self.inner)
    }

    /// A log-normal-ish positive jitter factor with unit mean: uniform in
    /// `[1-spread, 1+spread]`. Used to de-synchronise otherwise identical
    /// clients without changing means.
    pub fn jitter(&mut self, spread: f64) -> f64 {
        debug_assert!((0.0..1.0).contains(&spread));
        self.range_f64(1.0 - spread, 1.0 + spread)
    }

    /// Zipf-distributed rank in `[0, n)` drawn by inverse CDF over the
    /// cumulative weights produced by [`zipf_cumulative`] (used for word
    /// frequencies in the wordcount corpus generator).
    pub fn zipf(&mut self, n: usize, _s: f64, cumulative: &[f64]) -> usize {
        debug_assert_eq!(cumulative.len(), n);
        debug_assert!(!cumulative.is_empty());
        let total = cumulative[n - 1];
        let target = self.uniform() * total;
        match cumulative.binary_search_by(|c| c.total_cmp(&target)) {
            Ok(i) => (i + 1).min(n - 1),
            Err(i) => i.min(n - 1),
        }
    }
}

/// Precompute cumulative Zipf weights `Σ 1/k^s` for [`SimRng::zipf`].
pub fn zipf_cumulative(n: usize, s: f64) -> Vec<f64> {
    let mut out = Vec::with_capacity(n);
    let mut acc = 0.0;
    for k in 1..=n {
        acc += 1.0 / (k as f64).powf(s);
        out.push(acc);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.uniform(), b.uniform());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..32).filter(|_| a.uniform() == b.uniform()).count();
        assert!(same < 4);
    }

    #[test]
    fn split_streams_are_independent_of_parent_usage() {
        let mut parent1 = SimRng::new(7);
        let mut child1 = parent1.split();
        let mut parent2 = SimRng::new(7);
        let mut child2 = parent2.split();
        // parent1 draws extra values; children must still agree.
        for _ in 0..10 {
            parent1.uniform();
        }
        for _ in 0..20 {
            assert_eq!(child1.uniform(), child2.uniform());
        }
    }

    #[test]
    fn exp_mean_converges() {
        let mut r = SimRng::new(3);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.exp(5.0)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn weighted_respects_weights() {
        let mut r = SimRng::new(9);
        let mut counts = [0u32; 3];
        for _ in 0..30_000 {
            counts[r.weighted(&[1.0, 2.0, 7.0])] += 1;
        }
        let total: u32 = counts.iter().sum();
        let frac2 = counts[2] as f64 / total as f64;
        assert!((frac2 - 0.7).abs() < 0.02, "frac {frac2}");
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(11);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }

    #[test]
    fn zipf_prefers_low_ranks() {
        let n = 1000;
        let cum = zipf_cumulative(n, 1.0);
        let mut r = SimRng::new(5);
        let mut low = 0;
        let draws = 10_000;
        for _ in 0..draws {
            if r.zipf(n, 1.0, &cum) < 10 {
                low += 1;
            }
        }
        // With s=1, P(rank<10) = H(10)/H(1000) ≈ 2.93/7.49 ≈ 0.39
        let frac = low as f64 / draws as f64;
        assert!((frac - 0.39).abs() < 0.05, "frac {frac}");
    }

    #[test]
    fn jitter_has_unit_mean() {
        let mut r = SimRng::new(13);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.jitter(0.3)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.01);
    }
}
