//! Virtual time for the discrete-event kernel.
//!
//! Time is an unsigned 64-bit count of **nanoseconds** since the start of a
//! simulation. Nanosecond resolution comfortably covers both the paper's
//! microsecond-scale network events (ping ≈ 240 µs) and its hour-scale
//! MapReduce runs (8220 s on a 4-node Edison cluster), while keeping all
//! arithmetic exact — important for reproducibility across platforms.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Nanoseconds in one second.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;

/// An absolute instant in simulated time (nanoseconds since t = 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(pub u64);

/// A span of simulated time (nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * NANOS_PER_SEC)
    }

    /// Construct from whole milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest nanosecond.
    ///
    /// Panics in debug builds if `s` is negative or non-finite.
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s.is_finite() && s >= 0.0, "invalid time {s}");
        SimTime((s * NANOS_PER_SEC as f64).round() as u64)
    }

    /// Whole microseconds (truncating) — the unit of Chrome trace-event
    /// timestamps.
    pub fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// This instant as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// This instant as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Duration elapsed since `earlier`.
    ///
    /// Panics in debug builds if `earlier` is later than `self`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(earlier <= self, "time went backwards: {earlier} > {self}");
        SimDuration(self.0 - earlier.0)
    }

    /// Saturating duration since `earlier` (zero if `earlier` is later).
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The greatest representable duration; used as an "infinite" sentinel.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * NANOS_PER_SEC)
    }

    /// Construct from whole milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from fractional seconds, rounding to the nearest nanosecond.
    ///
    /// Panics in debug builds if `s` is negative or non-finite.
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s.is_finite() && s >= 0.0, "invalid duration {s}");
        SimDuration((s * NANOS_PER_SEC as f64).round() as u64)
    }

    /// Construct from fractional milliseconds.
    pub fn from_millis_f64(ms: f64) -> Self {
        Self::from_secs_f64(ms / 1e3)
    }

    /// This duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// This duration as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// True if this duration is zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating addition.
    pub fn saturating_add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }

    /// Scale by a non-negative factor, rounding to the nearest nanosecond.
    pub fn mul_f64(self, k: f64) -> SimDuration {
        debug_assert!(k.is_finite() && k >= 0.0, "invalid scale {k}");
        SimDuration((self.0 as f64 * k).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= NANOS_PER_SEC {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let t = SimTime::from_secs_f64(1.5);
        assert_eq!(t.0, 1_500_000_000);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
        assert!((t.as_millis_f64() - 1500.0).abs() < 1e-9);
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_millis(250);
        let b = SimDuration::from_millis(750);
        assert_eq!((a + b).as_secs_f64(), 1.0);
        assert_eq!((b - a).as_millis_f64(), 500.0);
        assert_eq!((a * 4).as_secs_f64(), 1.0);
        assert_eq!((b / 3).as_millis_f64(), 250.0);
    }

    #[test]
    fn time_plus_duration() {
        let t = SimTime::from_secs(10);
        let t2 = t + SimDuration::from_millis(1);
        assert_eq!(t2.since(t), SimDuration::from_millis(1));
        assert_eq!(t2 - t, SimDuration::from_millis(1));
    }

    #[test]
    fn saturating_since_clamps() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(2);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_secs(1));
    }

    #[test]
    fn mul_f64_rounds() {
        let d = SimDuration::from_secs(1).mul_f64(0.5);
        assert_eq!(d, SimDuration::from_millis(500));
        assert_eq!(SimDuration::from_secs(3).mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000s");
        assert_eq!(format!("{}", SimDuration::from_millis(2)), "2.000ms");
        assert_eq!(format!("{}", SimDuration(42)), "42ns");
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(SimTime::ZERO < SimTime::MAX);
    }
}
