//! # edison-simcore
//!
//! Discrete-event simulation kernel used by every substrate in the
//! reproduction of *"An Experimental Evaluation of Datacenter Workloads On
//! Low-Power Embedded Micro Servers"* (VLDB 2016).
//!
//! The kernel is deliberately small and fully deterministic:
//!
//! * [`SimTime`] / [`SimDuration`] — integer-nanosecond virtual time.
//! * [`Simulation`] / [`Model`] — a single-threaded event loop over a
//!   user-supplied world type. Events are an arbitrary user enum; ties in
//!   time are broken by insertion order so runs are exactly reproducible.
//! * [`fluid::FluidResource`] — a processor-sharing "fluid" resource used to
//!   model CPUs (cores shared among threads) and network links (bandwidth
//!   shared among flows) without time-stepping.
//! * [`queue::FcfsQueue`] — a k-server first-come-first-served queue used to
//!   model disks and database servers.
//! * [`stats`] — histograms, percentile sample sets, time series and counters
//!   used by the experiment harness to regenerate the paper's figures.
//! * [`energy::StepIntegrator`] — exact integration of piecewise-constant
//!   power draw into joules, the paper's headline metric.
//! * [`rng`] — seeded deterministic random number helpers.
//!
//! The kernel has no knowledge of servers, networks or workloads; those live
//! in the `edison-hw`, `edison-cluster`, `edison-net`, `edison-web` and
//! `edison-mapreduce` crates.

pub mod energy;
pub mod engine;
pub mod fluid;
pub mod profile;
pub mod queue;
pub mod rng;
pub mod sched;
pub mod stats;
pub mod time;

pub use engine::{Ctx, Model, NoopObserver, Observer, Simulation};
pub use sched::SchedBuf;
pub use profile::{EngineProfile, KindProfiler, KindStats, NoopProfiler, Profiler};
pub use time::{SimDuration, SimTime};
