//! Guard configuration and priority classing.

use crate::units::Budget;
use edison_simcore::rng::SimRng;
use edison_simcore::time::SimDuration;
use edison_simrun::derive_seed;

/// Priority class of a connection. Drawn once per connection from a
/// derived seed ([`class_of`]) so classing never perturbs the workload
/// RNG stream: a guarded run with shedding disabled stays byte-identical
/// to an unguarded one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Priority {
    /// Latency-sensitive foreground traffic: shed last, degraded only
    /// when its own deadline is at risk.
    Interactive,
    /// Background/bulk traffic: first to shed, always degraded during a
    /// brownout.
    Bulk,
}

/// Full overload-protection configuration of one tier.
///
/// Every feature is individually zero-disabled; [`GuardConfig::off`]
/// (the default) disables them all, and the hosting world must treat
/// that as a byte-identical no-op — no counters, no telemetry, no state.
#[derive(Debug, Clone, PartialEq)]
pub struct GuardConfig {
    /// Per-request end-to-end deadline budget (`Budget::ZERO` = off).
    /// Propagates from the first SYN through every lifecycle stage.
    pub deadline: Budget,
    /// Reserved time a MySQL leg is assumed to need: a request whose
    /// remaining budget is below this degrades instead of querying.
    pub db_reserve: SimDuration,
    /// Circuit breaker: consecutive failures before a backend's breaker
    /// opens (0 = breakers off).
    pub breaker_threshold: u32,
    /// How long an open breaker rejects before probing half-open.
    pub breaker_cooldown: SimDuration,
    /// Concurrent half-open probe connections per backend.
    pub breaker_probes: u32,
    /// Fraction of connections eligible as half-open probes
    /// (derived-seed draw, see [`probe_eligible`]).
    pub probe_ratio: f64,
    /// LB admission token-bucket rate, connections/s (0 = bucket off).
    pub admit_rate: f64,
    /// Token-bucket burst capacity, connections.
    pub admit_burst: f64,
    /// CoDel-style queue-delay target: sojourn above this for a full
    /// interval starts shedding (`ZERO` = gate off).
    pub queue_target: SimDuration,
    /// CoDel interval (how long above-target sojourn is tolerated).
    pub queue_interval: SimDuration,
    /// Brownout enter threshold on the smoothed queue delay
    /// (`ZERO` = brownout off).
    pub brownout_enter: SimDuration,
    /// Brownout exit threshold (hysteresis; must be < enter).
    pub brownout_exit: SimDuration,
    /// Fraction of connections classed [`Priority::Bulk`].
    pub shed_ratio: f64,
}

impl GuardConfig {
    /// Everything off: the hosting world must be byte-identical to a
    /// world with no guard at all.
    pub fn off() -> Self {
        GuardConfig {
            deadline: Budget::ZERO,
            db_reserve: SimDuration::ZERO,
            breaker_threshold: 0,
            breaker_cooldown: SimDuration::ZERO,
            breaker_probes: 0,
            probe_ratio: 0.0,
            admit_rate: 0.0,
            admit_burst: 0.0,
            queue_target: SimDuration::ZERO,
            queue_interval: SimDuration::ZERO,
            brownout_enter: SimDuration::ZERO,
            brownout_exit: SimDuration::ZERO,
            shed_ratio: 0.0,
        }
    }

    /// The web tier's reference guard: 1.5 s deadlines (mid Figure-10
    /// axis), 50 ms reserved for the MySQL leg, 5-failure breakers with
    /// 3 s cooldowns and 2 probe slots, a 100 ms CoDel gate, and a
    /// 250/50 ms brownout band shedding half the traffic as bulk.
    /// `admit_rate` is left off — callers size it to scenario capacity.
    pub fn web_defaults() -> Self {
        GuardConfig {
            deadline: Budget::from_millis(1500),
            db_reserve: SimDuration::from_millis(50),
            breaker_threshold: 5,
            breaker_cooldown: SimDuration::from_secs(3),
            breaker_probes: 2,
            probe_ratio: 0.25,
            admit_rate: 0.0,
            admit_burst: 0.0,
            queue_target: SimDuration::from_millis(100),
            queue_interval: SimDuration::from_millis(500),
            brownout_enter: SimDuration::from_millis(250),
            brownout_exit: SimDuration::from_millis(50),
            shed_ratio: 0.5,
        }
    }

    /// The MapReduce tier's reference guard. Only the features that make
    /// sense for heartbeat-driven batch dispatch are on: a 1-failure
    /// breaker per worker (one RM node-lost verdict stops new grants
    /// there) with a 4-heartbeat cooldown and a single probe container,
    /// plus a 600 s per-attempt task deadline for straggler accounting.
    /// Admission control and brownout stay off — batch jobs queue, they
    /// don't shed.
    pub fn mr_defaults() -> Self {
        GuardConfig {
            deadline: Budget::from_millis(600_000),
            db_reserve: SimDuration::ZERO,
            breaker_threshold: 1,
            breaker_cooldown: SimDuration::from_secs(4),
            breaker_probes: 1,
            probe_ratio: 0.0,
            admit_rate: 0.0,
            admit_burst: 0.0,
            queue_target: SimDuration::ZERO,
            queue_interval: SimDuration::ZERO,
            brownout_enter: SimDuration::ZERO,
            brownout_exit: SimDuration::ZERO,
            shed_ratio: 0.0,
        }
    }

    /// True when any guard feature is enabled. Everything the hosting
    /// world does for guards — accounting, telemetry, state — must be
    /// gated on this, so `off()` runs are byte-identical no-ops.
    pub fn is_active(&self) -> bool {
        !self.deadline.is_zero()
            || self.breaker_threshold > 0
            || self.admit_rate > 0.0
            || !self.queue_target.is_zero()
            || !self.brownout_enter.is_zero()
    }
}

impl Default for GuardConfig {
    fn default() -> Self {
        GuardConfig::off()
    }
}

/// Priority class of connection `conn` — a pure function of the run
/// seed, the connection id and the configured bulk fraction.
pub fn class_of(seed: u64, conn: u64, shed_ratio: f64) -> Priority {
    if shed_ratio <= 0.0 {
        return Priority::Interactive;
    }
    let mut rng = SimRng::new(derive_seed(seed, "guard:class", conn));
    if rng.chance(shed_ratio) {
        Priority::Bulk
    } else {
        Priority::Interactive
    }
}

/// Whether connection `conn` may serve as a half-open breaker probe —
/// a pure function of the run seed and the connection id, so probe
/// selection is independent of event-arrival order.
pub fn probe_eligible(seed: u64, conn: u64, probe_ratio: f64) -> bool {
    if probe_ratio <= 0.0 {
        return false;
    }
    let mut rng = SimRng::new(derive_seed(seed, "guard:probe", conn));
    rng.chance(probe_ratio)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_is_inactive_and_defaults_active() {
        assert!(!GuardConfig::off().is_active());
        assert!(!GuardConfig::default().is_active());
        assert!(GuardConfig::web_defaults().is_active());
    }

    #[test]
    fn each_feature_alone_activates() {
        let mut g = GuardConfig::off();
        g.deadline = Budget::from_millis(100);
        assert!(g.is_active());
        let mut g = GuardConfig::off();
        g.breaker_threshold = 1;
        assert!(g.is_active());
        let mut g = GuardConfig::off();
        g.admit_rate = 10.0;
        assert!(g.is_active());
        let mut g = GuardConfig::off();
        g.queue_target = SimDuration::from_millis(10);
        assert!(g.is_active());
        let mut g = GuardConfig::off();
        g.brownout_enter = SimDuration::from_millis(10);
        assert!(g.is_active());
    }

    #[test]
    fn classing_is_deterministic_and_ratio_bounded() {
        let a = class_of(42, 7, 0.5);
        assert_eq!(a, class_of(42, 7, 0.5), "same seed/conn ⇒ same class");
        assert_eq!(class_of(42, 7, 0.0), Priority::Interactive);
        let bulk =
            (0..1000).filter(|&c| class_of(42, c, 0.5) == Priority::Bulk).count();
        assert!((350..650).contains(&bulk), "≈half bulk, got {bulk}");
        assert!(!probe_eligible(42, 7, 0.0));
        assert_eq!(probe_eligible(42, 7, 0.25), probe_eligible(42, 7, 0.25));
    }
}
