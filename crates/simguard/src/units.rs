//! Unit newtypes for deadline arithmetic.
//!
//! Deadline math mixes two time scales: budgets are configured and
//! reported in *milliseconds* (the paper's Table 7 / Figure 10 axis),
//! while the simulator's native [`SimTime`]/[`SimDuration`] arithmetic
//! is in *seconds*. [`Millis`] and [`Secs`] make the scale part of the
//! type, and simlint's R8 dimensional pass knows both (plus [`Deadline`]
//! and [`Budget`]), so a `deadline_ms + timeout_s` slip is a lint
//! finding, not a 1000× bug.

use edison_simcore::time::{SimDuration, SimTime};

/// A scalar duration in milliseconds (reporting/config scale).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Millis(pub f64);

/// A scalar duration in seconds (the simulator's native scale).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Secs(pub f64);

impl Millis {
    /// Convert to seconds (the only sanctioned way across the scales).
    pub fn to_secs(self) -> Secs {
        Secs(self.0 / 1e3)
    }
}

impl Secs {
    /// Convert to milliseconds (the only sanctioned way across the
    /// scales).
    pub fn to_millis(self) -> Millis {
        Millis(self.0 * 1e3)
    }
}

/// A per-request deadline *budget*: how much wall (sim) time the request
/// may spend end to end. `Budget::ZERO` means "no deadline" — guard
/// logic treats it as a byte-identical no-op, never as "already late".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct Budget(SimDuration);

impl Budget {
    /// The disabled budget: no deadline is ever derived from it.
    pub const ZERO: Budget = Budget(SimDuration::ZERO);

    /// Wrap a duration as a budget.
    pub const fn new(d: SimDuration) -> Self {
        Budget(d)
    }

    /// A budget of whole milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        Budget(SimDuration::from_millis(ms))
    }

    /// True when deadlines are disabled.
    pub fn is_zero(self) -> bool {
        self.0.is_zero()
    }

    /// The underlying duration.
    pub fn get(self) -> SimDuration {
        self.0
    }

    /// The budget in milliseconds, typed.
    pub fn as_millis(self) -> Millis {
        Millis(self.0.as_millis_f64())
    }

    /// The budget in seconds, typed.
    pub fn as_secs(self) -> Secs {
        Secs(self.0.as_secs_f64())
    }

    /// The absolute deadline for a request sent at `start`, or `None`
    /// when the budget is disabled.
    pub fn deadline_from(self, start: SimTime) -> Option<Deadline> {
        if self.is_zero() {
            None
        } else {
            Some(Deadline(start + self.0))
        }
    }
}

/// An absolute per-request deadline instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Deadline(SimTime);

impl Deadline {
    /// The deadline instant itself.
    pub fn at(self) -> SimTime {
        self.0
    }

    /// True once `now` is past the deadline.
    pub fn passed(self, now: SimTime) -> bool {
        now > self.0
    }

    /// Time left before the deadline (zero once passed).
    pub fn remaining(self, now: SimTime) -> SimDuration {
        self.0.saturating_since(now)
    }

    /// True when less than `reserve` is left — the request cannot afford
    /// a leg estimated to cost `reserve` and should degrade instead.
    pub fn cannot_afford(self, now: SimTime, reserve: SimDuration) -> bool {
        self.remaining(now) < reserve
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_budget_never_becomes_a_deadline() {
        assert!(Budget::ZERO.deadline_from(SimTime::from_secs(5)).is_none());
        assert!(Budget::default().is_zero());
    }

    #[test]
    fn deadline_arithmetic() {
        let b = Budget::from_millis(1500);
        let d = b.deadline_from(SimTime::from_secs(10)).unwrap();
        assert!(!d.passed(SimTime::from_secs(11)));
        assert!(d.passed(SimTime::from_secs(12)));
        assert_eq!(d.remaining(SimTime::from_secs(11)), SimDuration::from_millis(500));
        assert!(d.cannot_afford(SimTime::from_secs(11), SimDuration::from_secs(1)));
        assert!(!d.cannot_afford(SimTime::from_secs(11), SimDuration::from_millis(400)));
        // passed ⇒ remaining saturates to zero, never negative
        assert_eq!(d.remaining(SimTime::from_secs(20)), SimDuration::ZERO);
    }

    #[test]
    fn scale_conversions_round_trip() {
        let ms = Millis(250.0);
        let s = ms.to_secs();
        assert!((s.0 - 0.25).abs() < 1e-12);
        assert!((s.to_millis().0 - 250.0).abs() < 1e-9);
        assert!((Budget::from_millis(2000).as_secs().0 - 2.0).abs() < 1e-12);
    }
}
