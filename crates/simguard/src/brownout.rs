//! Brownout: a tier-wide degraded mode with hysteresis.
//!
//! Brownout in the Klein et al. sense: when the smoothed queue delay
//! says the tier cannot serve everyone at full fidelity, serve the
//! sheddable class a cheap degraded response (here: skip the
//! memcached/MySQL stage) instead of making everyone time out. The
//! controller is a two-threshold comparator over a signal the caller
//! supplies — no internal clocks, so state changes only on observation
//! and the controller is trivially deterministic.

use edison_simcore::time::{SimDuration, SimTime};

/// What one observation did to the brownout state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BrownoutStep {
    /// No transition.
    None,
    /// Degraded mode just engaged.
    Entered,
    /// Degraded mode just released; carries when it had engaged (the
    /// caller records the interval as a span).
    Exited {
        /// Start of the brownout interval that just ended.
        since: SimTime,
    },
}

/// The two-threshold brownout controller.
#[derive(Debug, Clone)]
pub struct Brownout {
    enter: SimDuration,
    exit: SimDuration,
    active_since: Option<SimTime>,
    entries: u64,
}

impl Brownout {
    /// Engage above `enter`, release below `exit` (hysteresis). A zero
    /// `enter` disables the controller.
    pub fn new(enter: SimDuration, exit: SimDuration) -> Self {
        Brownout { enter, exit, active_since: None, entries: 0 }
    }

    /// True while degraded mode is engaged.
    pub fn active(&self) -> bool {
        self.active_since.is_some()
    }

    /// When the current brownout engaged, if one is active.
    pub fn active_since(&self) -> Option<SimTime> {
        self.active_since
    }

    /// How many times degraded mode has engaged.
    pub fn entries(&self) -> u64 {
        self.entries
    }

    /// Feed the smoothed queue-delay signal (seconds) at `now`.
    pub fn observe(&mut self, signal_s: f64, now: SimTime) -> BrownoutStep {
        if self.enter.is_zero() {
            return BrownoutStep::None;
        }
        match self.active_since {
            None if signal_s > self.enter.as_secs_f64() => {
                self.active_since = Some(now);
                self.entries += 1;
                BrownoutStep::Entered
            }
            Some(since) if signal_s < self.exit.as_secs_f64() => {
                self.active_since = None;
                BrownoutStep::Exited { since }
            }
            _ => BrownoutStep::None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn disabled_controller_never_engages() {
        let mut b = Brownout::new(SimDuration::ZERO, SimDuration::ZERO);
        assert_eq!(b.observe(100.0, t(1)), BrownoutStep::None);
        assert!(!b.active());
    }

    #[test]
    fn hysteresis_band() {
        let mut b =
            Brownout::new(SimDuration::from_millis(250), SimDuration::from_millis(50));
        assert_eq!(b.observe(0.2, t(1)), BrownoutStep::None, "under enter");
        assert_eq!(b.observe(0.3, t(2)), BrownoutStep::Entered);
        assert!(b.active());
        assert_eq!(b.active_since(), Some(t(2)));
        assert_eq!(b.observe(0.1, t(3)), BrownoutStep::None, "inside the band: stays");
        assert_eq!(b.observe(0.3, t(4)), BrownoutStep::None, "already active");
        assert_eq!(b.observe(0.01, t(5)), BrownoutStep::Exited { since: t(2) });
        assert!(!b.active());
        assert_eq!(b.entries(), 1);
    }
}
