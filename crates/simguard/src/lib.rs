//! simguard — deterministic overload protection and graceful degradation.
//!
//! The paper's most interesting wimpy-vs-brawny effects live past the
//! saturation knee, where the unguarded stacks have exactly one answer:
//! queue until a hard 5xx. This crate supplies the defenses a production
//! tier would run there, built so that every decision is a pure function
//! of (configuration, sim-time, derived seed) — no wall clock, no
//! ambient RNG, no map-iteration order — and therefore byte-identical
//! across the legacy state-machine driver, the async lifecycle driver,
//! and any `--jobs` level:
//!
//! * [`Deadline`]/[`Budget`] — per-request deadline budgets that
//!   propagate through every lifecycle stage (LB → lighttpd → PHP →
//!   memcached/MySQL). Checked at stage boundaries; a request that
//!   cannot finish in time is shed early or served degraded instead of
//!   timing out at full cost.
//! * [`CircuitBreaker`] — per-backend closed/open/half-open breaker with
//!   sim-time cooldowns and derived-seed probe selection, so a dead or
//!   flapping backend stops eating retries without masking the
//!   health-check recovery path.
//! * [`TokenBucket`] + [`QueueGate`] — admission control at the load
//!   balancer: a rate/burst bucket plus a CoDel-style queue-delay gate
//!   that sheds when the PHP backlog sojourn stays above target.
//! * [`Brownout`] — a degraded mode: when the smoothed queue delay
//!   crosses the enter threshold, sheddable-priority requests skip the
//!   memcached/MySQL stage and get a cheap degraded response.
//!
//! Load shedding is priority-classed ([`Priority`], drawn per connection
//! from a derived seed so the class never perturbs workload RNG draws).
//! [`metrics`] names the telemetry vocabulary the web/MapReduce tiers
//! record under.

pub mod admit;
pub mod breaker;
pub mod brownout;
pub mod config;
pub mod metrics;
pub mod units;

pub use admit::{GateVerdict, QueueGate, TokenBucket};
pub use breaker::{BreakerState, BreakerVerdict, CircuitBreaker};
pub use brownout::{Brownout, BrownoutStep};
pub use config::{class_of, probe_eligible, GuardConfig, Priority};
pub use units::{Budget, Deadline, Millis, Secs};
