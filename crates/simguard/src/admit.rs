//! Load-balancer admission control: token bucket + CoDel-style queue
//! gate.

use crate::config::Priority;
use edison_simcore::time::{SimDuration, SimTime};

/// A deterministic token bucket: `rate` tokens/s refilled lazily on
/// access, holding at most `burst`. One connection = one token.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate: f64,
    burst: f64,
    tokens: f64,
    last: SimTime,
}

impl TokenBucket {
    /// A full bucket. `rate <= 0` disables the bucket (always admits).
    pub fn new(rate: f64, burst: f64) -> Self {
        let burst = burst.max(1.0);
        TokenBucket { rate, burst, tokens: burst, last: SimTime::ZERO }
    }

    /// Take one token at `now`; `false` means shed.
    pub fn try_take(&mut self, now: SimTime) -> bool {
        if self.rate <= 0.0 {
            return true;
        }
        let dt = now.saturating_since(self.last).as_secs_f64();
        self.last = now;
        self.tokens = (self.tokens + dt * self.rate).min(self.burst);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// What the queue gate wants done with an arriving connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateVerdict {
    /// Under target (or gate off): admit.
    Admit,
    /// Dropping state: shed [`Priority::Bulk`] connections.
    ShedBulk,
    /// Sojourn far past target (≥ 2× while dropping): shed everything.
    ShedAll,
}

/// A CoDel-style queue-delay gate.
///
/// The hosting tier feeds it every observed PHP-backlog sojourn (zero
/// when a request was admitted straight to a worker). When the *minimum*
/// sojourn over an interval stays above `target`, the gate enters a
/// dropping state and sheds arriving connections at a
/// `interval/√drop_count` cadence — CoDel's control law, applied at
/// admission instead of dequeue. One below-target observation exits.
#[derive(Debug, Clone)]
pub struct QueueGate {
    target: SimDuration,
    interval: SimDuration,
    /// Smallest sojourn seen in the current above-target episode.
    min_sojourn: SimDuration,
    /// When the current above-target episode started.
    above_since: Option<SimTime>,
    dropping: bool,
    drop_next: SimTime,
    drop_count: u32,
    /// EWMA of the sojourn in seconds (the brownout signal).
    ewma_s: f64,
}

impl QueueGate {
    /// An idle gate. A zero `target` disables it (always admits).
    pub fn new(target: SimDuration, interval: SimDuration) -> Self {
        let interval =
            if interval.is_zero() { SimDuration::from_millis(500) } else { interval };
        QueueGate {
            target,
            interval,
            min_sojourn: SimDuration::MAX,
            above_since: None,
            dropping: false,
            drop_next: SimTime::ZERO,
            drop_count: 0,
            ewma_s: 0.0,
        }
    }

    /// Smoothed sojourn, seconds (drives [`crate::Brownout`]).
    pub fn smoothed_sojourn_s(&self) -> f64 {
        self.ewma_s
    }

    /// True while the gate is in its dropping state.
    pub fn dropping(&self) -> bool {
        self.dropping
    }

    /// Record one observed queue sojourn at `now`.
    pub fn observe(&mut self, sojourn: SimDuration, now: SimTime) {
        if self.target.is_zero() {
            return;
        }
        self.ewma_s = 0.875 * self.ewma_s + 0.125 * sojourn.as_secs_f64();
        if sojourn < self.target {
            // one good observation resets the episode and stops dropping
            self.min_sojourn = SimDuration::MAX;
            self.above_since = None;
            self.dropping = false;
            self.drop_count = 0;
            return;
        }
        self.min_sojourn = self.min_sojourn.min(sojourn);
        let since = *self.above_since.get_or_insert(now);
        if !self.dropping && now.saturating_since(since) >= self.interval {
            // min sojourn stayed above target for a whole interval
            self.dropping = true;
            self.drop_count = 1;
            self.drop_next = now;
        }
    }

    /// Gate one arriving connection of class `class` at `now`.
    pub fn verdict(&mut self, now: SimTime, class: Priority) -> GateVerdict {
        if self.target.is_zero() || !self.dropping {
            return GateVerdict::Admit;
        }
        let severe = self.ewma_s >= 2.0 * self.target.as_secs_f64();
        if now >= self.drop_next {
            // CoDel control law: next drop interval/√count later
            self.drop_count += 1;
            let step = self.interval.as_secs_f64() / (f64::from(self.drop_count)).sqrt();
            self.drop_next = now + SimDuration::from_secs_f64(step);
            if severe {
                GateVerdict::ShedAll
            } else {
                GateVerdict::ShedBulk
            }
        } else if severe && class == Priority::Bulk {
            // between drop instants a severely late queue still refuses
            // bulk work
            GateVerdict::ShedBulk
        } else {
            GateVerdict::Admit
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn disabled_bucket_and_gate_always_admit() {
        let mut b = TokenBucket::new(0.0, 0.0);
        for i in 0..100 {
            assert!(b.try_take(at(i)));
        }
        let mut g = QueueGate::new(SimDuration::ZERO, SimDuration::ZERO);
        g.observe(SimDuration::from_secs(9), at(0));
        assert_eq!(g.verdict(at(1), Priority::Bulk), GateVerdict::Admit);
    }

    #[test]
    fn bucket_limits_rate_but_allows_burst() {
        let mut b = TokenBucket::new(10.0, 5.0);
        // the full burst passes instantly
        for _ in 0..5 {
            assert!(b.try_take(at(0)));
        }
        assert!(!b.try_take(at(0)), "burst exhausted");
        // 100 ms refills one token at 10/s
        assert!(b.try_take(at(100)));
        assert!(!b.try_take(at(100)));
    }

    #[test]
    fn gate_enters_dropping_after_a_sustained_episode() {
        let mut g = QueueGate::new(SimDuration::from_millis(100), SimDuration::from_millis(500));
        let high = SimDuration::from_millis(150);
        g.observe(high, at(0));
        assert_eq!(g.verdict(at(10), Priority::Bulk), GateVerdict::Admit, "episode too young");
        g.observe(high, at(600));
        assert!(g.dropping());
        assert_eq!(g.verdict(at(610), Priority::Bulk), GateVerdict::ShedBulk);
        // a below-target sojourn exits immediately
        g.observe(SimDuration::from_millis(10), at(700));
        assert!(!g.dropping());
        assert_eq!(g.verdict(at(710), Priority::Bulk), GateVerdict::Admit);
    }

    #[test]
    fn severe_overload_sheds_everything_at_drop_instants() {
        let mut g = QueueGate::new(SimDuration::from_millis(100), SimDuration::from_millis(500));
        let huge = SimDuration::from_secs(5);
        for i in 0..20 {
            g.observe(huge, at(i * 200));
        }
        assert!(g.smoothed_sojourn_s() > 0.2);
        assert_eq!(g.verdict(at(4100), Priority::Interactive), GateVerdict::ShedAll);
    }
}
