//! Shared metric names for the guard layer, so the web tier, the
//! MapReduce tier, and the experiments agree on spelling — the byte-exact
//! export determinism tests depend on this.

use edison_simtel::Telemetry;

/// Counter: requests admitted past the guard layer (the conservation
/// identity's left-hand side), labelled `{tier}`.
pub const ADMITTED_TOTAL: &str = "guard_admitted_total";

/// Counter: requests/connections shed by the guard layer, labelled
/// `{tier, reason}` (`deadline` / `queue` / `lb_bucket` / `breaker`).
pub const SHED_TOTAL: &str = "guard_shed_total";

/// Counter: requests served a degraded (cache/db-skipping) response,
/// labelled `{tier, reason}` (`brownout` / `deadline`).
pub const DEGRADED_TOTAL: &str = "guard_degraded_total";

/// Counter: full responses delivered after their deadline, labelled
/// `{tier}`.
pub const DEADLINE_MISS_TOTAL: &str = "guard_deadline_miss_total";

/// Counter: guarded requests that ended in an error path, labelled
/// `{tier, reason}` (`overflow` / `dead_node` / `conn_lost` /
/// `inflight_at_stop`). Closes the conservation identity:
/// admitted = completed + degraded + shed + failed.
pub const FAILED_TOTAL: &str = "guard_failed_total";

/// Counter: breaker state transitions, labelled `{tier, to}`
/// (`open` / `half_open` / `closed`).
pub const BREAKER_TRANSITIONS_TOTAL: &str = "guard_breaker_transitions_total";

/// Gauge: current breaker state per backend, labelled `{tier, backend}`
/// (0 = closed, 0.5 = half-open, 1 = open).
pub const BREAKER_STATE: &str = "guard_breaker_state";

/// Histogram: PHP-backlog sojourn as seen by the admission gate,
/// labelled `{tier}`.
pub const QUEUE_DELAY_SECONDS: &str = "guard_queue_delay_seconds";

/// Bucket bounds for [`QUEUE_DELAY_SECONDS`].
pub const QUEUE_DELAY_BOUNDS_S: &[f64] =
    &[0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0];

/// Gauge: 1 while the tier is in brownout (degraded) mode, labelled
/// `{tier}`.
pub const BROWNOUT_ACTIVE: &str = "guard_brownout_active";

/// Counter: client retries, split by cause, labelled `{cause}`
/// (`dead` = connect/read timeout on a crashed backend,
/// `overflow` = retry after a backlog-overflow 5xx). Splits the
/// previously conflated `web_client_retries_total` accounting.
pub const RETRY_CAUSE: &str = "web_client_retries_total";

/// Register help text for every guard metric. Called by traced runs
/// *only when the guard is active*, so guards-off exports stay
/// byte-identical to pre-guard runs.
pub fn register_help(tel: &mut Telemetry) {
    tel.help(ADMITTED_TOTAL, "requests admitted past the guard layer, by tier");
    tel.help(SHED_TOTAL, "requests shed by the guard layer, by tier and reason");
    tel.help(DEGRADED_TOTAL, "degraded (stage-skipping) responses served, by tier and reason");
    tel.help(DEADLINE_MISS_TOTAL, "full responses delivered after their deadline, by tier");
    tel.help(FAILED_TOTAL, "guarded requests ending in an error path, by tier and reason");
    tel.help(BREAKER_TRANSITIONS_TOTAL, "circuit-breaker state transitions, by tier and target state");
    tel.help(BREAKER_STATE, "current circuit-breaker state per backend (0 closed, 0.5 half-open, 1 open)");
    tel.help(QUEUE_DELAY_SECONDS, "PHP-backlog sojourn observed by the admission gate, seconds");
    tel.help(BROWNOUT_ACTIVE, "1 while the tier serves degraded (brownout) responses");
}
