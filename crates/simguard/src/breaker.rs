//! Per-backend circuit breaker: closed → open → half-open → closed.
//!
//! All transitions happen on explicit calls with an explicit `now` —
//! there are no timer events, so an idle breaker costs the hosting
//! world nothing and guards-off runs schedule exactly the same events
//! as before the breaker existed. The open→half-open transition is
//! evaluated lazily on the next [`CircuitBreaker::check`].

use edison_simcore::time::{SimDuration, SimTime};

/// The breaker's observable state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: traffic flows, consecutive failures are counted.
    Closed,
    /// Tripped: all traffic rejected until the cooldown elapses.
    Open,
    /// Cooling down finished: a bounded number of probe connections may
    /// test the backend; one success closes, one failure reopens.
    HalfOpen,
}

/// What [`CircuitBreaker::check`] allows for one routing decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerVerdict {
    /// Closed: route normally.
    Pass,
    /// Half-open with a free probe slot: route only probe-eligible
    /// connections (the caller then claims the slot with
    /// [`CircuitBreaker::begin_probe`]).
    Probe,
    /// Open (or half-open with all probe slots busy): skip this backend.
    Reject,
}

/// A closed/open/half-open circuit breaker over one backend.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    threshold: u32,
    cooldown: SimDuration,
    probes_max: u32,
    state: BreakerState,
    failures: u32,
    open_until: SimTime,
    probes_inflight: u32,
    /// When the current half-open phase began (window reporting).
    half_open_since: Option<SimTime>,
    trips: u64,
}

impl CircuitBreaker {
    /// A closed breaker tripping after `threshold` consecutive failures,
    /// rejecting for `cooldown`, then admitting up to `probes_max`
    /// concurrent probes.
    pub fn new(threshold: u32, cooldown: SimDuration, probes_max: u32) -> Self {
        CircuitBreaker {
            threshold,
            cooldown,
            probes_max: probes_max.max(1),
            state: BreakerState::Closed,
            failures: 0,
            open_until: SimTime::ZERO,
            probes_inflight: 0,
            half_open_since: None,
            trips: 0,
        }
    }

    /// Current state *without* advancing the open→half-open transition.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// How often this breaker has tripped open.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Start of the current half-open phase, if in one.
    pub fn half_open_since(&self) -> Option<SimTime> {
        self.half_open_since
    }

    /// One routing decision at `now`. Advances open→half-open when the
    /// cooldown has elapsed (lazy: no timer event needed).
    pub fn check(&mut self, now: SimTime) -> BreakerVerdict {
        if self.threshold == 0 {
            return BreakerVerdict::Pass;
        }
        if self.state == BreakerState::Open && now >= self.open_until {
            self.state = BreakerState::HalfOpen;
            self.probes_inflight = 0;
            self.half_open_since = Some(now);
        }
        match self.state {
            BreakerState::Closed => BreakerVerdict::Pass,
            BreakerState::Open => BreakerVerdict::Reject,
            BreakerState::HalfOpen => {
                if self.probes_inflight < self.probes_max {
                    BreakerVerdict::Probe
                } else {
                    BreakerVerdict::Reject
                }
            }
        }
    }

    /// Claim a half-open probe slot (after a [`BreakerVerdict::Probe`]).
    pub fn begin_probe(&mut self) {
        self.probes_inflight = self.probes_inflight.saturating_add(1);
    }

    /// Release a probe slot without a verdict (the probing connection
    /// went away for unrelated reasons).
    pub fn end_probe(&mut self) {
        self.probes_inflight = self.probes_inflight.saturating_sub(1);
    }

    /// Record a backend failure. Returns `true` when this call tripped
    /// the breaker open (closed past threshold, or a failed half-open
    /// probe).
    pub fn record_failure(&mut self, now: SimTime) -> bool {
        if self.threshold == 0 {
            return false;
        }
        match self.state {
            BreakerState::Closed => {
                self.failures += 1;
                if self.failures >= self.threshold {
                    self.state = BreakerState::Open;
                    self.open_until = now + self.cooldown;
                    self.trips += 1;
                    true
                } else {
                    false
                }
            }
            BreakerState::HalfOpen => {
                // one failed probe reopens for a full cooldown
                self.state = BreakerState::Open;
                self.open_until = now + self.cooldown;
                self.half_open_since = None;
                self.probes_inflight = 0;
                self.failures = self.threshold;
                self.trips += 1;
                true
            }
            BreakerState::Open => false,
        }
    }

    /// Record a backend success. Returns the start of the half-open
    /// phase this success just closed, if it did — the caller reports
    /// that interval as the breaker's recovery window.
    pub fn record_success(&mut self) -> Option<SimTime> {
        if self.threshold == 0 {
            return None;
        }
        self.failures = 0;
        if self.state == BreakerState::HalfOpen {
            self.state = BreakerState::Closed;
            self.probes_inflight = 0;
            return self.half_open_since.take();
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn disabled_breaker_always_passes() {
        let mut b = CircuitBreaker::new(0, SimDuration::from_secs(1), 1);
        assert!(!b.record_failure(t(0)));
        assert_eq!(b.check(t(0)), BreakerVerdict::Pass);
        assert_eq!(b.record_success(), None);
    }

    #[test]
    fn trips_after_threshold_and_cools_to_half_open() {
        let mut b = CircuitBreaker::new(3, SimDuration::from_secs(2), 1);
        assert!(!b.record_failure(t(1)));
        assert!(!b.record_failure(t(1)));
        assert!(b.record_failure(t(1)), "third consecutive failure trips");
        assert_eq!(b.trips(), 1);
        assert_eq!(b.check(t(2)), BreakerVerdict::Reject, "inside cooldown");
        assert_eq!(b.check(t(3)), BreakerVerdict::Probe, "cooldown elapsed");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert_eq!(b.half_open_since(), Some(t(3)));
    }

    #[test]
    fn probe_slots_are_bounded() {
        let mut b = CircuitBreaker::new(1, SimDuration::from_secs(1), 2);
        b.record_failure(t(0));
        assert_eq!(b.check(t(1)), BreakerVerdict::Probe);
        b.begin_probe();
        assert_eq!(b.check(t(1)), BreakerVerdict::Probe);
        b.begin_probe();
        assert_eq!(b.check(t(1)), BreakerVerdict::Reject, "both slots busy");
        b.end_probe();
        assert_eq!(b.check(t(1)), BreakerVerdict::Probe);
    }

    #[test]
    fn probe_success_closes_and_reports_the_window() {
        let mut b = CircuitBreaker::new(1, SimDuration::from_secs(1), 1);
        b.record_failure(t(0));
        assert_eq!(b.check(t(4)), BreakerVerdict::Probe);
        b.begin_probe();
        assert_eq!(b.record_success(), Some(t(4)), "window start reported");
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.record_success(), None, "already closed: no window");
    }

    #[test]
    fn probe_failure_reopens_for_a_full_cooldown() {
        let mut b = CircuitBreaker::new(2, SimDuration::from_secs(2), 1);
        b.record_failure(t(0));
        b.record_failure(t(0));
        assert_eq!(b.check(t(3)), BreakerVerdict::Probe);
        b.begin_probe();
        assert!(b.record_failure(t(3)), "failed probe re-trips");
        assert_eq!(b.trips(), 2);
        assert_eq!(b.check(t(4)), BreakerVerdict::Reject);
        assert_eq!(b.check(t(5)), BreakerVerdict::Probe);
    }

    #[test]
    fn successes_reset_the_failure_count() {
        let mut b = CircuitBreaker::new(2, SimDuration::from_secs(1), 1);
        b.record_failure(t(0));
        b.record_success();
        assert!(!b.record_failure(t(0)), "count was reset");
    }
}
